// Package obs is the dependency-free observability layer shared by the
// simulator, the run-orchestration engine, and the serving tier: a
// metrics registry of counters, gauges, and bounded histograms with a
// deterministic bucket layout, rendered in the Prometheus text
// exposition format, plus a lightweight run-trace facility (spans with
// monotonic timestamps and slow-run threshold logging).
//
// Every instrument's mutation path is a plain atomic operation — no
// locks, no maps, no allocation — so instrumentation can sit on the
// simulator's zero-allocation hot path without perturbing it. The
// registry itself is locked only at registration and render time.
//
// The package depends on the standard library only; nothing in it knows
// about simulations, pools, or HTTP. The metric *sets* the rest of the
// repo shares (SimMetrics, PoolMetrics) live in sets.go as plain
// bundles of instruments with stable metric names.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. The zero value is
// usable but unregistered; instruments that should appear on /metrics
// come from Registry.Counter.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative or NaN deltas are ignored —
// a counter only ever goes up.
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. The bucket layout is chosen
// at construction and never changes, so two processes built from the
// same code render identical label sets — deterministic enough to diff.
// Observations are lock-free: one atomic add on the owning bucket, one
// on the sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram validates and copies the bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicates and non-finite bounds; +Inf is always implicit.
	out := bs[:0]
	for _, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != b {
			out = append(out, b)
		}
	}
	return &Histogram{bounds: out, counts: make([]atomic.Uint64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the per-bucket counts (last entry is the overflow /
// +Inf bucket), the total observation count, and the sum.
func (h *Histogram) Snapshot() (counts []uint64, count uint64, sum float64) {
	if h == nil {
		return nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		count += counts[i]
	}
	return counts, count, math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	_, n, _ := h.Snapshot()
	return n
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the owning bucket — the
// classic bounded-bucket estimator: find the bucket holding the q·count
// rank, then interpolate between its bounds by the rank's position
// within the bucket's count. The first bucket interpolates up from 0
// (every repo histogram observes non-negative quantities); the +Inf
// overflow bucket has no upper edge to interpolate toward, so ranks
// landing there clamp to the highest finite bound. An empty histogram
// reports 0; q outside [0, 1] clamps.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, count, _ := h.Snapshot()
	return quantileFromCounts(h.bounds, counts, count, q)
}

// Quantiles estimates several quantiles from one consistent snapshot,
// so p50/p95/p99 in a report cannot straddle concurrent observations.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	counts, count, _ := h.Snapshot()
	for i, q := range qs {
		out[i] = quantileFromCounts(h.bounds, counts, count, q)
	}
	return out
}

// quantileFromCounts runs the interpolation over a snapshot.
func quantileFromCounts(bounds []float64, counts []uint64, count uint64, q float64) float64 {
	if count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if rank > cum {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: clamp to the top finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	// Unreachable (rank <= total cum by construction); defensive clamp.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is the canonical latency layout (seconds): 1 ms to
// ~100 s in roughly-3x steps. Shared by every duration histogram so
// dashboards line up across subsystems.
var DurationBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// ioWriteFailures counts every durable-write path (fsync, atomic
// rename, journal append) that failed, process-wide. It is global
// rather than per-registry because the writers it instruments — the
// runner journal, the cache disk tier, the dispatcher WAL, the worker
// spool — live below the component registries; each component exports
// it with RegisterIOWriteFailures so the count appears on every
// /metrics surface under one name.
var ioWriteFailures Counter

// IOWriteFailures returns the process-global durable-write failure
// counter (series fcdpm_io_write_failures_total).
func IOWriteFailures() *Counter { return &ioWriteFailures }

// RegisterIOWriteFailures exposes the global write-failure counter on
// reg as fcdpm_io_write_failures_total.
func RegisterIOWriteFailures(reg *Registry) {
	reg.CounterFunc("fcdpm_io_write_failures_total",
		"Durable writes (fsync / atomic rename / journal append) that failed, process-wide.",
		ioWriteFailures.Value)
}

// Label is one constant key="value" pair attached to a metric at
// registration. Dynamic label values are deliberately unsupported:
// every series is declared up front, so cardinality is bounded by code.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered, sorted: `k1="v1",k2="v2"` or ""
	kind   kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds the registered instruments and renders them. All
// methods are safe for concurrent use. Registration is idempotent: the
// same (name, labels) returns the same instrument, so independent
// subsystems can share a series without coordination; re-registering
// under a different kind panics (a programming error worth failing
// loudly on).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// renderLabels sorts and formats constant labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds (or finds) the series.
func (r *Registry) register(name, help string, k kind, labels []Label) *metric {
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, k, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: ls, kind: k}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or returns) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time — the bridge for state that already lives elsewhere (queue
// lengths, cache occupancy) without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gaugeFn = fn
}

// CounterFunc registers a counter series whose value is read from fn at
// render time — for monotone counts that live outside the registry
// (the process-global I/O failure counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gaugeFn = fn
}

// Histogram registers (or returns) a histogram series with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = newHistogram(buckets)
	}
	return m.hist
}

// formatValue renders a float the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleName renders `name{labels}` with optional extra labels appended.
func sampleName(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// WritePrometheus renders every registered series in the text
// exposition format (version 0.0.4), sorted by name then label set, so
// two renders of the same state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	var b strings.Builder
	prev := ""
	for _, m := range ms {
		if m.name != prev {
			prev = m.name
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			} else {
				v = m.counter.Value()
			}
			fmt.Fprintf(&b, "%s %s\n", sampleName(m.name, m.labels, ""), formatValue(v))
		case kindGauge:
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			} else {
				v = m.gauge.Value()
			}
			fmt.Fprintf(&b, "%s %s\n", sampleName(m.name, m.labels, ""), formatValue(v))
		case kindHistogram:
			counts, count, sum := m.hist.Snapshot()
			cum := uint64(0)
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(m.hist.bounds) {
					le = formatValue(m.hist.bounds[i])
				}
				fmt.Fprintf(&b, "%s %d\n",
					sampleName(m.name+"_bucket", m.labels, `le="`+le+`"`), cum)
			}
			fmt.Fprintf(&b, "%s %s\n", sampleName(m.name+"_sum", m.labels, ""), formatValue(sum))
			fmt.Fprintf(&b, "%s %d\n", sampleName(m.name+"_count", m.labels, ""), count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
