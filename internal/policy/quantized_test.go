package policy

import (
	"errors"
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

func runPolicy(t *testing.T, p sim.Policy, trace *workload.Trace) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Sys:    fuelcell.PaperSystem(),
		Dev:    device.Camcorder(),
		Store:  storage.MustSuperCap(6, 1),
		Trace:  trace,
		Policy: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQuantizedPolicyRuns(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	trace := workload.Periodic(30, 14, 3.03, device.CamcorderRunCurrent)
	q := must(NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, 8)))
	res := runPolicy(t, q, trace)
	if q.Err() != nil {
		t.Fatalf("planning errors: %v", q.Err())
	}
	if res.Deficit > 0.5 {
		t.Fatalf("deficit = %v", res.Deficit)
	}
	// All profile currents on the level grid is implied by construction;
	// check the name encodes the level count.
	if res.Policy != "FC-DPM-q8" {
		t.Fatalf("name = %q", res.Policy)
	}
}

func TestQuantizedApproachesContinuous(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	trace := workload.Periodic(40, 14, 3.03, device.CamcorderRunCurrent)
	cont := runPolicy(t, NewFCDPM(sys, dev), trace)
	coarse := runPolicy(t, must(NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, 3))), trace)
	fine := runPolicy(t, must(NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, 64))), trace)
	// Finer grids close the gap to the continuous policy.
	gapCoarse := coarse.Fuel - cont.Fuel
	gapFine := fine.Fuel - cont.Fuel
	if gapFine > gapCoarse+1e-6 {
		t.Fatalf("fine gap %v should not exceed coarse gap %v", gapFine, gapCoarse)
	}
	if gapFine > 0.05*cont.Fuel {
		t.Fatalf("64-level policy %v too far from continuous %v", fine.Fuel, cont.Fuel)
	}
	// Even coarse quantization should beat Conv-DPM comfortably.
	conv := runPolicy(t, NewConv(sys), trace)
	if coarse.AvgFuelRate() > 0.7*conv.AvgFuelRate() {
		t.Fatalf("coarse quantized %v not clearly beating conv %v",
			coarse.AvgFuelRate(), conv.AvgFuelRate())
	}
}

func TestQuantizedSnapUp(t *testing.T) {
	sys := fuelcell.PaperSystem()
	q := must(NewFCDPMQuantized(sys, device.Camcorder(), []float64{0.1, 0.5, 1.2}))
	cases := []struct{ in, want float64 }{
		{0.05, 0.1}, {0.1, 0.1}, {0.3, 0.5}, {0.5, 0.5}, {0.9, 1.2}, {1.3, 1.2},
	}
	for _, c := range cases {
		if got := q.snapUp(c.in); got != c.want {
			t.Errorf("snapUp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizedConstructorErrors(t *testing.T) {
	// Level grids are user input (scenario files, flags): bad ones must
	// come back as typed ConfigErrors, not panics.
	sys := fuelcell.PaperSystem()
	for name, levels := range map[string][]float64{
		"empty":        nil,
		"out of range": {2},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := NewFCDPMQuantized(sys, device.Camcorder(), levels)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Param != "levels" {
				t.Fatalf("ConfigError = %+v, want Param levels", ce)
			}
		})
	}
}

func TestSchedulePolicyReplaysSettings(t *testing.T) {
	sys := fuelcell.PaperSystem()
	settings := []fcopt.Setting{
		{IFi: 0.3, IFa: 0.9},
		{IFi: 0.4, IFa: 1.0},
	}
	s := NewSchedule(sys, settings)
	s.Reset(6, 1)
	s.PlanIdle(sim.SlotInfo{K: 0})
	ps := s.SegmentPlan(sim.Segment{Kind: sim.SegStandby, Dur: 5, Load: 0.4}, 1)
	if ps[0].IF != 0.3 {
		t.Fatalf("slot 0 idle IF = %v", ps[0].IF)
	}
	ps = s.SegmentPlan(sim.Segment{Kind: sim.SegActive, Dur: 3, Load: 1.2}, 3)
	if ps[0].IF != 0.9 {
		t.Fatalf("slot 0 active IF = %v", ps[0].IF)
	}
	s.PlanIdle(sim.SlotInfo{K: 1})
	ps = s.SegmentPlan(sim.Segment{Kind: sim.SegSleep, Dur: 5, Load: 0.2}, 1)
	if ps[0].IF != 0.4 {
		t.Fatalf("slot 1 idle IF = %v", ps[0].IF)
	}
}

func TestSchedulePolicyFallbackPastEnd(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := NewSchedule(sys, nil)
	s.Reset(6, 1)
	s.PlanIdle(sim.SlotInfo{K: 0, IdleLoad: 0.2, PredActiveCurrent: 1.22})
	ps := s.SegmentPlan(sim.Segment{Kind: sim.SegStandby, Dur: 5, Load: 0.2}, 1)
	if ps[0].IF != 0.2 {
		t.Fatalf("fallback idle IF = %v, want load-follow 0.2", ps[0].IF)
	}
	s.PlanActive(sim.SlotInfo{K: 0, ActualActiveCurrent: 1.4})
	ps = s.SegmentPlan(sim.Segment{Kind: sim.SegActive, Dur: 3, Load: 1.4}, 3)
	if ps[0].IF != 1.2 {
		t.Fatalf("fallback active IF = %v, want clamp 1.2", ps[0].IF)
	}
}

func TestOfflineScheduleThroughSimulator(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	trace := workload.Periodic(20, 14, 3.03, device.CamcorderRunCurrent)

	// Build the offline problem mirroring the simulator's segments: all
	// idles exceed Tbe so every slot sleeps.
	slots := make([]fcopt.Slot, trace.Len())
	for k, s := range trace.Slots {
		ti := s.Idle
		idleCharge := dev.IPD*dev.TauPD + dev.Islp*(ti-dev.TauPD)
		taEff := dev.TauWU + dev.TauSR + s.Active + dev.TauRS
		activeCharge := dev.IWU*dev.TauWU + s.ActiveCurrent*(dev.TauSR+s.Active+dev.TauRS)
		slots[k] = fcopt.Slot{
			Ti: ti, IldI: idleCharge / ti,
			Ta: taEff, IldA: activeCharge / taEff,
		}
	}
	sched, err := fcopt.SolveOffline(fcopt.OfflineProblem{
		Sys: sys, Cmax: 6, Slots: slots, Q0: 1, GridN: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runPolicy(t, NewSchedule(sys, sched.Settings), trace)
	// Simulated fuel should track the DP's prediction closely (grid and
	// averaging error only).
	if math.Abs(res.Fuel-sched.Fuel) > 0.06*sched.Fuel {
		t.Fatalf("simulated %v vs DP %v", res.Fuel, sched.Fuel)
	}
	// And the offline schedule should be no worse than the online policy
	// beyond small modelling slack.
	online := runPolicy(t, NewFCDPM(sys, dev), trace)
	if res.Fuel > online.Fuel*1.05 {
		t.Fatalf("offline %v clearly worse than online %v", res.Fuel, online.Fuel)
	}
}

func TestBandedReducesActuation(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	cfg := workload.DefaultCamcorderConfig()
	cfg.Duration = 600
	trace, err := workload.Camcorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := runPolicy(t, NewFCDPM(sys, dev), trace)
	banded := runPolicy(t, must(NewFCDPMBanded(sys, dev, 0.05)), trace)
	if banded.SetpointChanges >= plain.SetpointChanges {
		t.Fatalf("dead band did not reduce actuation: %d vs %d",
			banded.SetpointChanges, plain.SetpointChanges)
	}
	// The fuel penalty of a 50 mA band is small.
	if banded.Fuel > plain.Fuel*1.03 {
		t.Fatalf("banded fuel %v too far above plain %v", banded.Fuel, plain.Fuel)
	}
	if banded.Deficit > 0.5 {
		t.Fatalf("banded deficit = %v", banded.Deficit)
	}
}

func TestBandedZeroEpsilonMatchesPlain(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	trace := workload.Periodic(20, 14, 3.03, device.CamcorderRunCurrent)
	plain := runPolicy(t, NewFCDPM(sys, dev), trace)
	banded := runPolicy(t, must(NewFCDPMBanded(sys, dev, 0)), trace)
	if math.Abs(plain.Fuel-banded.Fuel) > 1e-9 {
		t.Fatalf("epsilon=0 band changed fuel: %v vs %v", banded.Fuel, plain.Fuel)
	}
}

func TestBandedRejectsNegativeEpsilon(t *testing.T) {
	_, err := NewFCDPMBanded(fuelcell.PaperSystem(), device.Camcorder(), -1)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
}

func TestMPCPolicyBasics(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()
	trace := workload.Periodic(15, 14, 3.03, device.CamcorderRunCurrent)
	m := must(NewMPC(sys, dev, 3))
	if m.Name() != "FC-DPM-mpc3" {
		t.Fatalf("name = %q", m.Name())
	}
	res := runPolicy(t, m, trace)
	if m.Err() != nil {
		t.Fatalf("planning errors: %v", m.Err())
	}
	// On a periodic trace MPC matches FC-DPM almost exactly.
	plain := runPolicy(t, NewFCDPM(sys, dev), trace)
	if math.Abs(res.Fuel-plain.Fuel)/plain.Fuel > 0.01 {
		t.Fatalf("MPC fuel %v far from FC-DPM %v", res.Fuel, plain.Fuel)
	}
	if res.Deficit > 0.5 {
		t.Fatalf("deficit = %v", res.Deficit)
	}
}

func TestMPCRejectsBadHorizon(t *testing.T) {
	_, err := NewMPC(fuelcell.PaperSystem(), device.Camcorder(), 0)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
}
