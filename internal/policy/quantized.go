package policy

import (
	"fmt"
	"sort"

	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// FCDPMQuantized is FC-DPM for fuel-flow controllers that support only
// discrete output levels (the multi-level configuration of [11]). Planning
// uses the quantized slot optimizer; the active-period re-plan computes the
// continuous Eq 13 value and snaps to the nearest level at or above it
// (rounding up so the Cend target is not silently missed).
type FCDPMQuantized struct {
	sys    *fuelcell.System
	dev    *device.Model
	levels []float64
	// overhead is the precomputed sleep-transition overhead block, nil
	// when the device has none; built once so per-slot planning does not
	// allocate.
	overhead *fcopt.Overhead

	cmax, chargeTarget float64
	ifi, ifa           float64
	planErr            error
}

// NewFCDPMQuantized returns the quantized FC-DPM policy. The levels must
// all lie within the system's load-following range; they are sorted
// internally. An empty or out-of-range level set — level grids arrive
// from scenario files and flags — yields a *ConfigError.
func NewFCDPMQuantized(sys *fuelcell.System, dev *device.Model, levels []float64) (*FCDPMQuantized, error) {
	if len(levels) == 0 {
		return nil, &ConfigError{Policy: "FC-DPM-q", Param: "levels", Detail: "need at least one output level"}
	}
	lv := make([]float64, len(levels))
	copy(lv, levels)
	sort.Float64s(lv)
	for _, l := range lv {
		if !sys.InRange(l) {
			return nil, &ConfigError{Policy: "FC-DPM-q", Param: "levels",
				Detail: fmt.Sprintf("level %v outside the load-following range", l)}
		}
	}
	f := &FCDPMQuantized{sys: sys, dev: dev, levels: lv}
	if dev.TauPD != 0 || dev.TauWU != 0 {
		f.overhead = &fcopt.Overhead{
			TauWU: dev.TauWU, IWU: dev.IWU,
			TauPD: dev.TauPD, IPD: dev.IPD,
		}
	}
	return f, nil
}

// Name implements sim.Policy.
func (f *FCDPMQuantized) Name() string {
	return fmt.Sprintf("FC-DPM-q%d", len(f.levels))
}

// Err returns the first planning failure, if any.
func (f *FCDPMQuantized) Err() error { return f.planErr }

// Reset implements sim.Policy.
func (f *FCDPMQuantized) Reset(cmax, chargeTarget float64) {
	f.cmax = cmax
	f.chargeTarget = chargeTarget
	f.ifi = f.levels[0]
	f.ifa = f.levels[len(f.levels)-1]
	f.planErr = nil
}

// snapUp returns the smallest level >= x, or the top level.
func (f *FCDPMQuantized) snapUp(x float64) float64 {
	for _, l := range f.levels {
		if l >= x-1e-12 {
			return l
		}
	}
	return f.levels[len(f.levels)-1]
}

// PlanIdle implements sim.Policy using the quantized slot optimizer on the
// predicted slot.
func (f *FCDPMQuantized) PlanIdle(info sim.SlotInfo) {
	slot := fcopt.Slot{
		Ti:       info.PredIdle,
		IldI:     info.IdleLoad,
		Ta:       info.PredActive + f.dev.TauSR + f.dev.TauRS,
		IldA:     info.PredActiveCurrent,
		Cini:     info.Charge,
		Cend:     info.ChargeTarget,
		Sleep:    info.Sleeping,
		Overhead: f.overhead,
	}
	set, err := fcopt.OptimizeQuantizedSorted(f.sys, f.cmax, slot, f.levels)
	if err != nil {
		if f.planErr == nil {
			f.planErr = err
		}
		f.ifi = f.snapUp(info.IdleLoad)
		f.ifa = f.snapUp(info.PredActiveCurrent)
		return
	}
	f.ifi = set.IFi
	f.ifa = set.IFa
}

// PlanActive implements sim.Policy: the continuous Eq 13 re-plan, snapped
// up to the nearest level.
func (f *FCDPMQuantized) PlanActive(info sim.SlotInfo) {
	dur := info.ActualActive + f.dev.TauSR + f.dev.TauRS
	charge := info.ActualActiveCurrent * dur
	if info.Sleeping {
		dur += f.dev.TauWU
		charge += f.dev.IWU * f.dev.TauWU
	}
	if dur <= 0 {
		return
	}
	f.ifa = f.snapUp((info.ChargeTarget + charge - info.Charge) / dur)
}

// SegmentPlan implements sim.Policy, splitting at storage boundaries like
// the continuous policy. The hold level after a boundary is snapped (up
// after an empty split so the load keeps being covered, down to the
// nearest feasible level after a full split is unnecessary — the bleeder
// handles the floor case, matching the continuous policy's behaviour).
func (f *FCDPMQuantized) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return f.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner, appending the snapped plan
// to buf.
func (f *FCDPMQuantized) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	start := len(buf)
	if seg.Kind.IdlePhase() {
		buf = splitAtFull(buf, f.sys, seg, charge, f.cmax, f.ifi)
	} else {
		buf = splitAtEmpty(buf, f.sys, seg, charge, f.ifa)
	}
	f.snapPieces(buf[start:])
	return buf
}

// snapPieces forces every piece current onto the level grid.
func (f *FCDPMQuantized) snapPieces(pieces []sim.Piece) []sim.Piece {
	for i := range pieces {
		pieces[i].IF = f.snapUp(pieces[i].IF)
	}
	return pieces
}

var _ sim.Policy = (*FCDPMQuantized)(nil)
