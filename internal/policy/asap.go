package policy

import (
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// ASAP is the ASAP-DPM baseline (§5): the FC system output matches the load
// current as closely as the load-following range allows. The charge-storage
// element supplies the excess when the load exceeds the range; "if the
// state of the charge storage drops below half its capacity, then it is
// recharged to full capacity as soon as possible by letting the FC deliver
// the highest current in the successive task slots."
type ASAP struct {
	sys        *fuelcell.System
	cmax       float64
	recharging bool
}

// NewASAP returns the ASAP-DPM baseline over the given FC system.
func NewASAP(sys *fuelcell.System) *ASAP { return &ASAP{sys: sys} }

// Name implements sim.Policy.
func (a *ASAP) Name() string { return "ASAP-DPM" }

// Reset implements sim.Policy.
func (a *ASAP) Reset(cmax, chargeTarget float64) {
	a.cmax = cmax
	a.recharging = false
}

// PlanIdle implements sim.Policy (ASAP plans per segment, not per slot).
func (a *ASAP) PlanIdle(sim.SlotInfo) {}

// PlanActive implements sim.Policy.
func (a *ASAP) PlanActive(sim.SlotInfo) {}

// SegmentPlan implements sim.Policy.
func (a *ASAP) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return a.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner.
func (a *ASAP) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	if charge < a.cmax/2 {
		a.recharging = true
	}
	if a.recharging {
		hi := a.sys.MaxOutput
		net := hi - seg.Load
		if net <= 0 {
			// Cannot gain charge against this load; keep delivering the
			// maximum and try again next segment.
			return append(buf, sim.Piece{IF: hi, Dur: seg.Dur})
		}
		tFull := (a.cmax - charge) / net
		if tFull >= seg.Dur {
			return append(buf, sim.Piece{IF: hi, Dur: seg.Dur})
		}
		// Full before the segment ends: resume load following.
		a.recharging = false
		rest := sim.Segment{Kind: seg.Kind, Dur: seg.Dur - tFull, Load: seg.Load}
		buf = append(buf, sim.Piece{IF: hi, Dur: tFull})
		return a.follow(buf, rest, a.cmax)
	}
	return a.follow(buf, seg, charge)
}

// follow matches the load within range. When the range floor sits above the
// load the storage absorbs the excess until full and the bleeder takes the
// rest; the FC output stays at the floor either way, so no split is needed.
func (a *ASAP) follow(buf []sim.Piece, seg sim.Segment, charge float64) []sim.Piece {
	return append(buf, sim.Piece{IF: a.sys.Clamp(seg.Load), Dur: seg.Dur})
}

var (
	_ sim.Policy       = (*ASAP)(nil)
	_ sim.PiecePlanner = (*ASAP)(nil)
)
