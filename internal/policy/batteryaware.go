package policy

import (
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// BatteryAware is a battery-centric source-control strategy in the spirit
// of the battery-aware DPM literature the paper's introduction surveys
// ([5, 8]): shape the storage element's current profile for battery
// health — shallow discharge, prompt recharge, and rest windows that let
// the recovery effect replenish the available-charge well.
//
// Concretely: during active periods the FC delivers its maximum so the
// battery discharges as little as possible; during idle periods the FC
// recharges at maximum until the battery is full, then drops to the range
// floor to give it a low-current rest.
//
// On an actual battery buffer this is sensible. On the FC hybrid it is
// exactly wrong: the on/off output pattern sits at the two worst points of
// the convex fuel map, and a supercapacitor has no recovery effect to
// exploit. The BatteryAwareAblation experiment reproduces the paper's §1
// claim — "battery-aware DPM policies cannot be applied to FC systems" —
// quantitatively.
type BatteryAware struct {
	sys  *fuelcell.System
	cmax float64
}

// NewBatteryAware returns the battery-centric strategy over the given FC
// system.
func NewBatteryAware(sys *fuelcell.System) *BatteryAware { return &BatteryAware{sys: sys} }

// Name implements sim.Policy.
func (b *BatteryAware) Name() string { return "Battery-Aware" }

// Reset implements sim.Policy.
func (b *BatteryAware) Reset(cmax, chargeTarget float64) { b.cmax = cmax }

// PlanIdle implements sim.Policy.
func (b *BatteryAware) PlanIdle(sim.SlotInfo) {}

// PlanActive implements sim.Policy.
func (b *BatteryAware) PlanActive(sim.SlotInfo) {}

// SegmentPlan implements sim.Policy.
func (b *BatteryAware) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	hi := b.sys.MaxOutput
	if !seg.Kind.IdlePhase() {
		// Active: shield the battery — deliver the maximum.
		return []sim.Piece{{IF: hi, Dur: seg.Dur}}
	}
	// Idle: recharge at maximum until full, then rest at the range floor.
	net := hi - seg.Load
	if net <= 0 {
		return []sim.Piece{{IF: hi, Dur: seg.Dur}}
	}
	tFull := (b.cmax - charge) / net
	if tFull >= seg.Dur {
		return []sim.Piece{{IF: hi, Dur: seg.Dur}}
	}
	lo := b.sys.MinOutput
	if tFull <= 0 {
		return []sim.Piece{{IF: lo, Dur: seg.Dur}}
	}
	return []sim.Piece{
		{IF: hi, Dur: tFull},
		{IF: lo, Dur: seg.Dur - tFull},
	}
}

var _ sim.Policy = (*BatteryAware)(nil)
