package policy

import (
	"fmt"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// TestPolicyDeviceStorageMatrix smoke-tests every policy against every
// device preset, storage model, and DPM mode: each combination must run to
// completion with finite, non-negative accounting and an intact energy
// balance. This is the safety net that catches interface misuse when a new
// policy, device, or storage model lands.
func TestPolicyDeviceStorageMatrix(t *testing.T) {
	sys := fuelcell.PaperSystem()

	devices := []*device.Model{device.Camcorder(), device.Synthetic(), device.HDD()}
	storages := []func() storage.Storage{
		func() storage.Storage { return storage.MustSuperCap(6, 1) },
		func() storage.Storage {
			b, err := storage.NewLiIon(6, 0.6, 0.05, 1)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	}
	policies := []func() sim.Policy{
		func() sim.Policy { return NewConv(sys) },
		func() sim.Policy { return NewASAP(sys) },
		func() sim.Policy { return NewFCDPM(sys, device.Camcorder()) },
		func() sim.Policy { return must(NewFCDPMQuantized(sys, device.Camcorder(), fcopt.UniformLevels(sys, 6))) },
		func() sim.Policy { return must(NewFCDPMBanded(sys, device.Camcorder(), 0.05)) },
		func() sim.Policy { return must(NewMPC(sys, device.Camcorder(), 2)) },
		func() sim.Policy { return NewFlat(sys, 0.5) },
		func() sim.Policy { return NewBatteryAware(sys) },
	}
	modes := []sim.DPMMode{sim.DPMPredictive, sim.DPMTimeout, sim.DPMAlwaysSleep}
	trace := workload.Periodic(6, 12, 3, 1.2)

	for _, dev := range devices {
		for si, mkStore := range storages {
			for _, mkPol := range policies {
				for _, mode := range modes {
					pol := mkPol()
					name := fmt.Sprintf("%s/%s/store%d/%s", pol.Name(), dev.Name, si, mode)
					t.Run(name, func(t *testing.T) {
						res, err := sim.Run(sim.Config{
							Sys: sys, Dev: dev,
							Store:  mkStore(),
							Trace:  trace,
							Policy: pol,
							DPM:    mode,
						})
						if err != nil {
							t.Fatalf("run failed: %v", err)
						}
						if res.Fuel <= 0 || res.Duration <= 0 {
							t.Fatalf("degenerate result: fuel=%v dur=%v", res.Fuel, res.Duration)
						}
						if res.Bled < 0 || res.Deficit < 0 {
							t.Fatalf("negative accounting: %+v", res)
						}
						if res.FinalCharge < -1e-9 || res.FinalCharge > 6+1e-9 {
							t.Fatalf("final charge out of bounds: %v", res.FinalCharge)
						}
					})
				}
			}
		}
	}
}
