package policy

import (
	"fmt"
	"math"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// FCDPMBanded wraps FC-DPM with an actuation dead band: a freshly computed
// set point is only commanded when it differs from the currently held one
// by more than Epsilon amps. Fuel-flow actuators (pump, valve, blower set
// points) wear with every move; the dead band trades a bounded fuel
// sub-optimality for far fewer commands — see the actuation ablation.
type FCDPMBanded struct {
	inner   *FCDPM
	Epsilon float64
	// A single held set point spans idle and active phases: FC-DPM's
	// optimum already makes IF,i ≈ IF,a within a slot (Eq 11), so one
	// band absorbs both the intra-slot re-plan and the slot-to-slot
	// drift.
	held float64
	have bool
}

// NewFCDPMBanded returns FC-DPM with an actuation dead band of epsilon
// amps. A negative epsilon — the band arrives from scenario files and
// flags — yields a *ConfigError; epsilon 0 degenerates to plain FC-DPM.
func NewFCDPMBanded(sys *fuelcell.System, dev *device.Model, epsilon float64) (*FCDPMBanded, error) {
	if epsilon < 0 {
		return nil, &ConfigError{Policy: "FC-DPM-band", Param: "epsilon",
			Detail: fmt.Sprintf("dead band %v is negative", epsilon)}
	}
	return &FCDPMBanded{inner: NewFCDPM(sys, dev), Epsilon: epsilon}, nil
}

// Name implements sim.Policy.
func (b *FCDPMBanded) Name() string { return fmt.Sprintf("FC-DPM-band(%.2fA)", b.Epsilon) }

// Err surfaces the wrapped policy's planning failures.
func (b *FCDPMBanded) Err() error { return b.inner.Err() }

// Reset implements sim.Policy.
func (b *FCDPMBanded) Reset(cmax, chargeTarget float64) {
	b.inner.Reset(cmax, chargeTarget)
	b.have = false
}

// band holds the previous value unless the new one escapes the dead band.
func (b *FCDPMBanded) band(fresh float64) float64 {
	if !b.have || math.Abs(fresh-b.held) > b.Epsilon {
		b.held = fresh
		b.have = true
	}
	return b.held
}

// PlanIdle implements sim.Policy.
func (b *FCDPMBanded) PlanIdle(info sim.SlotInfo) {
	b.inner.PlanIdle(info)
	b.inner.ifi = b.band(b.inner.ifi)
	b.inner.ifa = b.band(b.inner.ifa)
}

// PlanActive implements sim.Policy.
func (b *FCDPMBanded) PlanActive(info sim.SlotInfo) {
	b.inner.PlanActive(info)
	b.inner.ifa = b.band(b.inner.ifa)
}

// SegmentPlan implements sim.Policy.
func (b *FCDPMBanded) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return b.inner.SegmentPlan(seg, charge)
}

// SegmentPlanInto implements sim.PiecePlanner by delegating to the
// wrapped FC-DPM.
func (b *FCDPMBanded) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	return b.inner.SegmentPlanInto(seg, charge, buf)
}

var (
	_ sim.Policy       = (*FCDPMBanded)(nil)
	_ sim.PiecePlanner = (*FCDPMBanded)(nil)
)
