package policy

// must unwraps constructor results whose parameters are fixed literals in
// the tests and therefore cannot fail.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
