package policy

import (
	"fmt"
	"math"
	"strings"
)

// BatchKey identities let the batched simulation core (sim.BatchRunner)
// group lanes whose policies are guaranteed to plan identically. Every
// policy here is fully determined by its construction parameters: Reset
// clears all per-run state before each run, so two instances with equal
// keys produce identical piece plans under identical inputs. The fuel
// cell system and device model enter by pointer identity — the same way
// sim's dynamics fingerprint treats them — and tunable floats by exact
// bits, so lanes group only on true equality.

// BatchKey implements sim.BatchKeyer.
func (c *Conv) BatchKey() string { return fmt.Sprintf("conv|%p", c.sys) }

// BatchKey implements sim.BatchKeyer.
func (f *Flat) BatchKey() string {
	return fmt.Sprintf("flat|%p|%x", f.sys, math.Float64bits(f.IF))
}

// BatchKey implements sim.BatchKeyer. ASAP's recharge hysteresis is
// per-run state cleared by Reset; two instances over the same system
// flip it at the same segments, so grouping is sound.
func (a *ASAP) BatchKey() string { return fmt.Sprintf("asap|%p", a.sys) }

// BatchKey implements sim.BatchKeyer.
func (f *FCDPM) BatchKey() string { return fmt.Sprintf("fcdpm|%p|%p", f.sys, f.dev) }

// BatchKey implements sim.BatchKeyer.
func (f *FCDPMQuantized) BatchKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fcdpm-q|%p|%p", f.sys, f.dev)
	for _, l := range f.levels {
		fmt.Fprintf(&sb, "|%x", math.Float64bits(l))
	}
	return sb.String()
}

// BatchKey implements sim.BatchKeyer.
func (b *FCDPMBanded) BatchKey() string {
	return fmt.Sprintf("fcdpm-band|%p|%p|%x", b.inner.sys, b.inner.dev, math.Float64bits(b.Epsilon))
}

// BatchKey implements sim.BatchKeyer.
func (b *BatteryAware) BatchKey() string { return fmt.Sprintf("battery-aware|%p", b.sys) }
