package policy

import (
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

func sys() *fuelcell.System { return fuelcell.PaperSystem() }

func pieceTotal(ps []sim.Piece) float64 {
	var d float64
	for _, p := range ps {
		d += p.Dur
	}
	return d
}

func TestConvAlwaysMax(t *testing.T) {
	c := NewConv(sys())
	c.Reset(6, 6)
	for _, seg := range []sim.Segment{
		{Kind: sim.SegSleep, Dur: 10, Load: 0.2},
		{Kind: sim.SegActive, Dur: 3, Load: 1.22},
	} {
		ps := c.SegmentPlan(seg, 3)
		if len(ps) != 1 || ps[0].IF != 1.2 {
			t.Fatalf("Conv plan = %+v, want single piece at 1.2", ps)
		}
		if pieceTotal(ps) != seg.Dur {
			t.Fatalf("pieces do not tile segment")
		}
	}
}

func TestFlatClampsAtConstruction(t *testing.T) {
	f := NewFlat(sys(), 2.0)
	if f.IF != 1.2 {
		t.Fatalf("Flat IF = %v, want clamped 1.2", f.IF)
	}
	f = NewFlat(sys(), 0.01)
	if f.IF != 0.1 {
		t.Fatalf("Flat IF = %v, want clamped 0.1", f.IF)
	}
	ps := f.SegmentPlan(sim.Segment{Dur: 5, Load: 0.3}, 2)
	if len(ps) != 1 || ps[0].IF != 0.1 || ps[0].Dur != 5 {
		t.Fatalf("Flat plan = %+v", ps)
	}
}

func TestASAPFollowsLoad(t *testing.T) {
	a := NewASAP(sys())
	a.Reset(6, 6)
	ps := a.SegmentPlan(sim.Segment{Kind: sim.SegStandby, Dur: 10, Load: 0.4}, 6)
	if len(ps) != 1 || ps[0].IF != 0.4 {
		t.Fatalf("plan = %+v, want follow at 0.4", ps)
	}
	// Load beyond range: clamp to 1.2, storage supplies the rest.
	ps = a.SegmentPlan(sim.Segment{Kind: sim.SegActive, Dur: 3, Load: 1.4}, 6)
	if len(ps) != 1 || ps[0].IF != 1.2 {
		t.Fatalf("plan = %+v, want clamp at 1.2", ps)
	}
	// Load below range floor: clamp to 0.1.
	ps = a.SegmentPlan(sim.Segment{Kind: sim.SegSleep, Dur: 10, Load: 0.05}, 6)
	if len(ps) != 1 || ps[0].IF != 0.1 {
		t.Fatalf("plan = %+v, want floor at 0.1", ps)
	}
}

func TestASAPRechargeRule(t *testing.T) {
	a := NewASAP(sys())
	a.Reset(6, 6)
	// Charge below half capacity triggers recharge at max output.
	seg := sim.Segment{Kind: sim.SegStandby, Dur: 20, Load: 0.4}
	ps := a.SegmentPlan(seg, 2)
	if ps[0].IF != 1.2 {
		t.Fatalf("recharge plan = %+v, want first piece at 1.2", ps)
	}
	// Time to full: (6-2)/(1.2-0.4) = 5 s, then follow for 15 s.
	if len(ps) != 2 || math.Abs(ps[0].Dur-5) > 1e-9 || math.Abs(ps[1].IF-0.4) > 1e-12 {
		t.Fatalf("recharge split = %+v, want [1.2 for 5s, 0.4 for 15s]", ps)
	}
	if math.Abs(pieceTotal(ps)-20) > 1e-9 {
		t.Fatal("pieces do not tile segment")
	}
	// Above half capacity: no recharging.
	a.Reset(6, 6)
	ps = a.SegmentPlan(seg, 4)
	if ps[0].IF != 0.4 {
		t.Fatalf("plan = %+v, want plain following above half capacity", ps)
	}
}

func TestASAPRechargeAgainstHighLoad(t *testing.T) {
	a := NewASAP(sys())
	a.Reset(6, 6)
	// Recharging demanded but load exceeds the range top: deliver max and
	// stay in recharge mode.
	ps := a.SegmentPlan(sim.Segment{Kind: sim.SegActive, Dur: 3, Load: 1.4}, 1)
	if len(ps) != 1 || ps[0].IF != 1.2 {
		t.Fatalf("plan = %+v", ps)
	}
	if !a.recharging {
		t.Fatal("recharge flag should persist while load blocks charging")
	}
}

func TestFCDPMMotivationalSlot(t *testing.T) {
	// Drive the policy by hand through the §3.2 example and check it
	// reproduces the 0.533 A flat setting.
	dev := &device.Model{V: 12, Isdb: 0.2, Islp: 0.1, TbeOverride: 1e9} // no sleep, no transitions
	f := NewFCDPM(sys(), dev)
	f.Reset(200, 0)
	f.PlanIdle(sim.SlotInfo{
		K: 0, Sleeping: false,
		PredIdle: 20, PredActive: 10, PredActiveCurrent: 1.2,
		IdleLoad: 0.2, Charge: 0, Cmax: 200, ChargeTarget: 0,
	})
	if math.Abs(f.ifi-16.0/30) > 1e-9 {
		t.Fatalf("planned IFi = %v, want 0.5333", f.ifi)
	}
	ps := f.SegmentPlan(sim.Segment{Kind: sim.SegStandby, Dur: 20, Load: 0.2}, 0)
	if len(ps) != 1 || math.Abs(ps[0].IF-16.0/30) > 1e-9 {
		t.Fatalf("idle plan = %+v", ps)
	}
	// Active re-plan with actuals equal to predictions keeps the setting.
	f.PlanActive(sim.SlotInfo{
		K: 0, Sleeping: false,
		ActualIdle: 20, ActualActive: 10, ActualActiveCurrent: 1.2,
		Charge: 20.0 / 3, Cmax: 200, ChargeTarget: 0,
	})
	if math.Abs(f.ifa-16.0/30) > 1e-9 {
		t.Fatalf("re-planned IFa = %v, want 0.5333", f.ifa)
	}
}

func TestFCDPMAdaptsToActuals(t *testing.T) {
	dev := &device.Model{V: 12, Isdb: 0.2, Islp: 0.1, TbeOverride: 1e9}
	f := NewFCDPM(sys(), dev)
	f.Reset(200, 0)
	f.PlanIdle(sim.SlotInfo{
		PredIdle: 20, PredActive: 10, PredActiveCurrent: 1.2,
		IdleLoad: 0.2, Charge: 0, Cmax: 200, ChargeTarget: 0,
	})
	// Actual active period is twice as long: IF,a must drop so the slot
	// still ends at the target charge.
	f.PlanActive(sim.SlotInfo{
		ActualActive: 20, ActualActiveCurrent: 1.2,
		Charge: 20.0 / 3, ChargeTarget: 0, Cmax: 200,
	})
	want := (0 + 1.2*20 - 20.0/3) / 20
	if math.Abs(f.ifa-want) > 1e-9 {
		t.Fatalf("IFa = %v, want %v", f.ifa, want)
	}
}

func TestFCDPMSplitAtFull(t *testing.T) {
	dev := &device.Model{V: 12, Isdb: 0.2, Islp: 0.1, TbeOverride: 1e9}
	f := NewFCDPM(sys(), dev)
	f.Reset(6, 6)
	f.ifi = 0.5
	// Charging at 0.5-0.2=0.3 A with 1.5 A-s of room: full after 5 s.
	ps := f.SegmentPlan(sim.Segment{Kind: sim.SegStandby, Dur: 20, Load: 0.2}, 4.5)
	if len(ps) != 2 {
		t.Fatalf("plan = %+v, want split", ps)
	}
	if math.Abs(ps[0].Dur-5) > 1e-9 || ps[0].IF != 0.5 {
		t.Fatalf("first piece = %+v", ps[0])
	}
	// After full, hold the clamped load (0.2 ≥ range floor).
	if math.Abs(ps[1].IF-0.2) > 1e-12 || math.Abs(ps[1].Dur-15) > 1e-9 {
		t.Fatalf("hold piece = %+v", ps[1])
	}
}

func TestFCDPMSplitAtEmpty(t *testing.T) {
	dev := &device.Model{V: 12, Isdb: 0.2, Islp: 0.1, TbeOverride: 1e9}
	f := NewFCDPM(sys(), dev)
	f.Reset(6, 6)
	f.ifa = 0.5
	// Discharging at 1.2-0.5=0.7 A with 1.4 A-s stored: empty after 2 s.
	ps := f.SegmentPlan(sim.Segment{Kind: sim.SegActive, Dur: 5, Load: 1.2}, 1.4)
	if len(ps) != 2 {
		t.Fatalf("plan = %+v, want split", ps)
	}
	if math.Abs(ps[0].Dur-2) > 1e-9 || ps[0].IF != 0.5 {
		t.Fatalf("first piece = %+v", ps[0])
	}
	if math.Abs(ps[1].IF-1.2) > 1e-12 {
		t.Fatalf("hold piece = %+v, want range-clamped load", ps[1])
	}
}

func TestFCDPMDegradesOnPlanError(t *testing.T) {
	dev := &device.Model{V: 12, Isdb: 0.2, Islp: 0.1, TbeOverride: 1e9}
	f := NewFCDPM(sys(), dev)
	f.Reset(6, 6)
	// Negative predicted idle is an invalid optimizer slot.
	f.PlanIdle(sim.SlotInfo{
		PredIdle: -5, PredActive: 10, PredActiveCurrent: 1.2,
		IdleLoad: 0.2, Charge: 3, Cmax: 6, ChargeTarget: 6,
	})
	if f.Err() == nil {
		t.Fatal("planning error not surfaced")
	}
	// Degraded plan still follows the load within range.
	if f.ifi != 0.2 || f.ifa != 1.2 {
		t.Fatalf("degraded plan = (%v, %v)", f.ifi, f.ifa)
	}
}

func TestFCDPMOverheadFromDevice(t *testing.T) {
	f := NewFCDPM(sys(), device.Camcorder())
	if oh := f.overhead(); oh == nil || oh.TauWU != 0.5 || oh.IPD != 0.4 {
		t.Fatalf("overhead = %+v", oh)
	}
	noTrans := &device.Model{V: 12, Isdb: 0.4, Islp: 0.2}
	f2 := NewFCDPM(sys(), noTrans)
	if f2.overhead() != nil {
		t.Fatal("zero-transition device should yield nil overhead")
	}
}

func TestNames(t *testing.T) {
	dev := device.Camcorder()
	for _, p := range []sim.Policy{NewConv(sys()), NewASAP(sys()), NewFCDPM(sys(), dev), NewFlat(sys(), 0.5)} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
