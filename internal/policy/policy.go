// Package policy implements the FC-system output-control policies the
// paper evaluates:
//
//   - Conv-DPM: no fuel-flow control; the FC is pinned at the top of its
//     load-following range (§5, "Ifc is always set to 1.3 A").
//   - ASAP-DPM: the FC follows the load as closely as possible, with a
//     recharge-ASAP rule when the storage drops below half capacity.
//   - FC-DPM: the paper's contribution (Fig 5) — per-slot fuel-optimal
//     flat output from the fcopt framework, planned from predictions at
//     idle start and re-planned from actuals at active start.
//   - Flat: a fixed-output policy used as the offline "oracle" lower bound
//     (by convexity, the best capacity-unconstrained setting is the
//     demand-weighted average current).
//
// All policies split their segment plans at storage-full/-empty boundaries
// so that bleed and deficit only occur where the physics forces them
// (range floor with a full store, range ceiling with an empty one).
package policy

import (
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// Conv is the Conv-DPM baseline: the FC constantly delivers the current
// matching the highest load profile; there is no fuel-flow control at all,
// so fuel burns at the maximum rate regardless of storage state.
type Conv struct {
	sys *fuelcell.System
}

// NewConv returns the Conv-DPM baseline over the given FC system.
func NewConv(sys *fuelcell.System) *Conv { return &Conv{sys: sys} }

// Name implements sim.Policy.
func (c *Conv) Name() string { return "Conv-DPM" }

// Reset implements sim.Policy.
func (c *Conv) Reset(cmax, chargeTarget float64) {}

// PlanIdle implements sim.Policy.
func (c *Conv) PlanIdle(sim.SlotInfo) {}

// PlanActive implements sim.Policy.
func (c *Conv) PlanActive(sim.SlotInfo) {}

// SegmentPlan implements sim.Policy: always the top of the range.
func (c *Conv) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return c.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner.
func (c *Conv) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	return append(buf, sim.Piece{IF: c.sys.MaxOutput, Dur: seg.Dur})
}

// Flat holds a fixed FC output for the whole run — the offline optimum for
// an unconstrained storage (Jensen), and a useful ablation point. The
// output is clamped to the load-following range at construction.
type Flat struct {
	sys *fuelcell.System
	IF  float64
}

// NewFlat returns a fixed-output policy at iF (clamped to range).
func NewFlat(sys *fuelcell.System, iF float64) *Flat {
	return &Flat{sys: sys, IF: sys.Clamp(iF)}
}

// Name implements sim.Policy.
func (f *Flat) Name() string { return "Flat" }

// Reset implements sim.Policy.
func (f *Flat) Reset(cmax, chargeTarget float64) {}

// PlanIdle implements sim.Policy.
func (f *Flat) PlanIdle(sim.SlotInfo) {}

// PlanActive implements sim.Policy.
func (f *Flat) PlanActive(sim.SlotInfo) {}

// SegmentPlan implements sim.Policy.
func (f *Flat) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return f.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner.
func (f *Flat) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	return append(buf, sim.Piece{IF: f.IF, Dur: seg.Dur})
}

// splitAtFull plans a constant output iF but drops to the range-clamped
// load current once the storage fills, so charge is not pointlessly bled.
// If even the clamped load overfills (load below the range floor), the
// remainder bleeds — the paper's bleeder by-pass case. The plan is
// appended to buf (which may be nil) so callers on the simulator's hot
// path can reuse one buffer across segments.
func splitAtFull(buf []sim.Piece, sys *fuelcell.System, seg sim.Segment, charge, cmax, iF float64) []sim.Piece {
	net := iF - seg.Load
	if net <= 0 {
		return append(buf, sim.Piece{IF: iF, Dur: seg.Dur})
	}
	tFull := (cmax - charge) / net
	if tFull >= seg.Dur {
		return append(buf, sim.Piece{IF: iF, Dur: seg.Dur})
	}
	hold := sys.Clamp(seg.Load)
	if tFull <= 0 {
		return append(buf, sim.Piece{IF: hold, Dur: seg.Dur})
	}
	return append(buf,
		sim.Piece{IF: iF, Dur: tFull},
		sim.Piece{IF: hold, Dur: seg.Dur - tFull},
	)
}

// splitAtEmpty plans a constant output iF but rises to the range-clamped
// load current once the storage empties, avoiding brownout where the range
// allows. Appends to buf like splitAtFull.
func splitAtEmpty(buf []sim.Piece, sys *fuelcell.System, seg sim.Segment, charge, iF float64) []sim.Piece {
	net := iF - seg.Load
	if net >= 0 {
		return append(buf, sim.Piece{IF: iF, Dur: seg.Dur})
	}
	tEmpty := charge / -net
	if tEmpty >= seg.Dur {
		return append(buf, sim.Piece{IF: iF, Dur: seg.Dur})
	}
	hold := sys.Clamp(seg.Load)
	if tEmpty <= 0 {
		return append(buf, sim.Piece{IF: hold, Dur: seg.Dur})
	}
	return append(buf,
		sim.Piece{IF: iF, Dur: tEmpty},
		sim.Piece{IF: hold, Dur: seg.Dur - tEmpty},
	)
}

var (
	_ sim.Policy       = (*Conv)(nil)
	_ sim.Policy       = (*Flat)(nil)
	_ sim.PiecePlanner = (*Conv)(nil)
	_ sim.PiecePlanner = (*Flat)(nil)
)
