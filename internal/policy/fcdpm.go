package policy

import (
	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// FCDPM is the paper's fuel-efficient DPM policy (Algorithm FC-DPM, Fig 5).
// At the start of each idle period it runs the §3 optimization over the
// *predicted* slot (T'i, T'a, I'ld,a) to set the idle-period FC output
// IF,i; when the active period's demands are revealed it re-solves the
// charge-balance equation (Eq 13) with the *actual* values to set IF,a,
// steering the storage back to the stability target Cend = Cini(1).
type FCDPM struct {
	sys *fuelcell.System
	dev *device.Model

	cmax, chargeTarget float64
	ifi, ifa           float64
	planErr            error // first planning failure, surfaced via Err

	// ovh caches the §3.3.2 overhead spec so PlanIdle does not rebuild
	// it (and allocate) every slot; refreshed from the device model on
	// Reset. hasOvh distinguishes "no sleep transitions" (nil spec).
	ovh    fcopt.Overhead
	hasOvh bool
}

// NewFCDPM returns the FC-DPM policy over the given FC system and device
// model (the device supplies the transition-overhead parameters of §3.3.2).
func NewFCDPM(sys *fuelcell.System, dev *device.Model) *FCDPM {
	f := &FCDPM{sys: sys, dev: dev}
	f.refreshOverhead()
	return f
}

// Name implements sim.Policy.
func (f *FCDPM) Name() string { return "FC-DPM" }

// Err returns the first slot-planning failure encountered, if any. Planning
// failures degrade to load following for the affected slot instead of
// aborting the run.
func (f *FCDPM) Err() error { return f.planErr }

// Reset implements sim.Policy.
func (f *FCDPM) Reset(cmax, chargeTarget float64) {
	f.cmax = cmax
	f.chargeTarget = chargeTarget
	f.ifi = f.sys.MinOutput
	f.ifa = f.sys.MaxOutput
	f.planErr = nil
	f.refreshOverhead()
}

// refreshOverhead rebuilds the cached §3.3.2 overhead spec from the
// device model (whose transition fields could have been edited between
// runs, so Reset re-reads them).
func (f *FCDPM) refreshOverhead() {
	f.hasOvh = f.dev.TauPD != 0 || f.dev.TauWU != 0
	f.ovh = fcopt.Overhead{
		TauWU: f.dev.TauWU, IWU: f.dev.IWU,
		TauPD: f.dev.TauPD, IPD: f.dev.IPD,
	}
}

// overhead returns the cached §3.3.2 overhead spec, nil when the device
// has no sleep transitions.
func (f *FCDPM) overhead() *fcopt.Overhead {
	if !f.hasOvh {
		return nil
	}
	return &f.ovh
}

// PlanIdle implements sim.Policy: run the slot optimization on predictions.
func (f *FCDPM) PlanIdle(info sim.SlotInfo) {
	// The active period seen by the optimizer includes the STANDBY↔RUN
	// transitions the simulator models explicitly, since they run at the
	// active current (§3.3.2 absorbs them into the active period).
	slot := fcopt.Slot{
		Ti:       info.PredIdle,
		IldI:     info.IdleLoad,
		Ta:       info.PredActive + f.dev.TauSR + f.dev.TauRS,
		IldA:     info.PredActiveCurrent,
		Cini:     info.Charge,
		Cend:     info.ChargeTarget,
		Sleep:    info.Sleeping,
		Overhead: f.overhead(),
	}
	set, err := fcopt.Optimize(f.sys, f.cmax, slot)
	if err != nil {
		if f.planErr == nil {
			f.planErr = err
		}
		// Degrade to load following for this slot.
		f.ifi = f.sys.Clamp(info.IdleLoad)
		f.ifa = f.sys.Clamp(info.PredActiveCurrent)
		return
	}
	f.ifi = set.IFi
	f.ifa = set.IFa
}

// PlanActive implements sim.Policy: re-solve IF,a from the actual active
// demands and the realized storage state (Fig 5, "Determine IF,a using
// actual Ta and Ild,a").
func (f *FCDPM) PlanActive(info sim.SlotInfo) {
	// Remaining demand until the end of the slot: wake-up (if sleeping),
	// startup, active, shutdown.
	dur := info.ActualActive + f.dev.TauSR + f.dev.TauRS
	charge := info.ActualActiveCurrent * dur
	if info.Sleeping {
		dur += f.dev.TauWU
		charge += f.dev.IWU * f.dev.TauWU
	}
	if dur <= 0 {
		return
	}
	// Eq 13 solved for IF,a over the remaining segments.
	ifa := (info.ChargeTarget + charge - info.Charge) / dur
	f.ifa = f.sys.Clamp(ifa)
}

// SegmentPlan implements sim.Policy: idle-phase segments run at IF,i (with
// a split at storage-full), active-phase segments at IF,a (with a split at
// storage-empty).
func (f *FCDPM) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return f.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner.
func (f *FCDPM) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	if seg.Kind.IdlePhase() {
		return splitAtFull(buf, f.sys, seg, charge, f.cmax, f.ifi)
	}
	return splitAtEmpty(buf, f.sys, seg, charge, f.ifa)
}

var (
	_ sim.Policy       = (*FCDPM)(nil)
	_ sim.PiecePlanner = (*FCDPM)(nil)
)
