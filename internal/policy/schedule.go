package policy

import (
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// Schedule plays a precomputed per-slot FC output schedule — typically the
// offline dynamic-programming optimum from fcopt.SolveOffline — through
// the simulator. It is the reference point for "how much does online
// prediction cost FC-DPM?".
//
// Slots beyond the schedule fall back to range-clamped load following.
type Schedule struct {
	sys      *fuelcell.System
	settings []fcopt.Setting

	cmax     float64
	k        int
	ifi, ifa float64
}

// NewSchedule returns a policy that replays the given per-slot settings.
func NewSchedule(sys *fuelcell.System, settings []fcopt.Setting) *Schedule {
	cp := make([]fcopt.Setting, len(settings))
	copy(cp, settings)
	return &Schedule{sys: sys, settings: cp}
}

// Name implements sim.Policy.
func (s *Schedule) Name() string { return "Offline-Schedule" }

// Reset implements sim.Policy.
func (s *Schedule) Reset(cmax, chargeTarget float64) {
	s.cmax = cmax
	s.k = 0
	s.ifi = s.sys.MinOutput
	s.ifa = s.sys.MaxOutput
}

// PlanIdle implements sim.Policy by looking up the slot's scheduled
// setting.
func (s *Schedule) PlanIdle(info sim.SlotInfo) {
	s.k = info.K
	if info.K < len(s.settings) {
		s.ifi = s.settings[info.K].IFi
		s.ifa = s.settings[info.K].IFa
		return
	}
	s.ifi = s.sys.Clamp(info.IdleLoad)
	s.ifa = s.sys.Clamp(info.PredActiveCurrent)
}

// PlanActive implements sim.Policy; the schedule is fixed, so nothing to
// re-plan (the offline solver already used actuals).
func (s *Schedule) PlanActive(info sim.SlotInfo) {
	if info.K >= len(s.settings) {
		s.ifa = s.sys.Clamp(info.ActualActiveCurrent)
	}
}

// SegmentPlan implements sim.Policy with the same boundary splitting as the
// online policy.
func (s *Schedule) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return s.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements sim.PiecePlanner.
func (s *Schedule) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	if seg.Kind.IdlePhase() {
		return splitAtFull(buf, s.sys, seg, charge, s.cmax, s.ifi)
	}
	return splitAtEmpty(buf, s.sys, seg, charge, s.ifa)
}

var (
	_ sim.Policy       = (*Schedule)(nil)
	_ sim.PiecePlanner = (*Schedule)(nil)
)
