package policy

import "fmt"

// ConfigError reports an invalid policy construction parameter. It is the
// typed, recoverable form of what used to be a constructor panic: the
// offending parameters arrive from scenario files and CLI flags, so they
// are user input, not programming errors, and must surface through the
// normal error chain (config validation, CLI exit codes) instead of
// crashing the process.
type ConfigError struct {
	Policy string // policy being constructed, e.g. "FC-DPM-q"
	Param  string // offending parameter, e.g. "levels"
	Detail string // what is wrong with it
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("policy: %s: invalid %s: %s", e.Policy, e.Param, e.Detail)
}
