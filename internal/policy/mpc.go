package policy

import (
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// MPC is a receding-horizon (model-predictive) variant of FC-DPM: at each
// idle-period start it solves the offline dynamic program over the next
// Horizon slots — the upcoming slot from the current predictions, the rest
// from the stationary assumption that future slots look like the predicted
// one — and commits only the first slot's setting. Active-period re-planning
// is identical to FC-DPM.
//
// On the paper's workload the single-slot policy already sits ~0.1 % from
// the clairvoyant offline optimum (see BenchmarkAblationOfflineDP), so the
// horizon buys essentially nothing — MPC exists to *demonstrate* that
// negative result (`exp.MPCAblation`) and to serve workloads with strong
// slot-to-slot coupling (tiny storage, highly alternating demand) where it
// does help.
type MPC struct {
	inner   *FCDPM
	Horizon int
	GridN   int
	planErr error
}

// NewMPC returns a receding-horizon FC-DPM with the given horizon (≥ 1
// slots; 1 degenerates to per-slot planning through the DP) and storage
// grid resolution (0 selects a fast 24-interval grid). A non-positive
// horizon — it arrives from scenario files and flags — yields a
// *ConfigError.
func NewMPC(sys *fuelcell.System, dev *device.Model, horizon int) (*MPC, error) {
	if horizon < 1 {
		return nil, &ConfigError{Policy: "FC-DPM-mpc", Param: "horizon",
			Detail: fmt.Sprintf("%d < 1", horizon)}
	}
	return &MPC{inner: NewFCDPM(sys, dev), Horizon: horizon, GridN: 24}, nil
}

// Name implements sim.Policy.
func (m *MPC) Name() string { return fmt.Sprintf("FC-DPM-mpc%d", m.Horizon) }

// Err returns the first planning failure; planning failures degrade to the
// single-slot FC-DPM plan for the affected slot.
func (m *MPC) Err() error {
	if m.planErr != nil {
		return m.planErr
	}
	return m.inner.Err()
}

// Reset implements sim.Policy.
func (m *MPC) Reset(cmax, chargeTarget float64) {
	m.inner.Reset(cmax, chargeTarget)
	m.planErr = nil
}

// PlanIdle implements sim.Policy: DP over the predicted horizon, commit
// slot 0.
func (m *MPC) PlanIdle(info sim.SlotInfo) {
	// Fall back to the single-slot plan first; the DP refines it.
	m.inner.PlanIdle(info)
	if m.Horizon <= 1 {
		return
	}
	dev := m.inner.dev
	taEff := info.PredActive + dev.TauSR + dev.TauRS
	activeCharge := info.PredActiveCurrent * taEff
	if info.Sleeping {
		taEff += dev.TauWU
		activeCharge += dev.IWU * dev.TauWU
	}
	if taEff <= 0 || info.PredIdle <= 0 {
		return
	}
	proto := fcopt.Slot{
		Ti:   info.PredIdle,
		IldI: info.IdleLoad,
		Ta:   taEff,
		IldA: activeCharge / taEff,
	}
	slots := make([]fcopt.Slot, m.Horizon)
	for k := range slots {
		slots[k] = proto
	}
	sched, err := fcopt.SolveOffline(fcopt.OfflineProblem{
		Sys:      m.inner.sys,
		Cmax:     m.inner.cmax,
		Slots:    slots,
		Q0:       info.Charge,
		FinalMin: info.ChargeTarget,
		GridN:    m.GridN,
	})
	if err != nil {
		if m.planErr == nil {
			m.planErr = err
		}
		return // keep the single-slot plan
	}
	m.inner.ifi = sched.Settings[0].IFi
	m.inner.ifa = sched.Settings[0].IFa
}

// PlanActive implements sim.Policy via FC-DPM's Eq 13 re-plan.
func (m *MPC) PlanActive(info sim.SlotInfo) { m.inner.PlanActive(info) }

// SegmentPlan implements sim.Policy via FC-DPM's boundary-splitting plans.
func (m *MPC) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return m.inner.SegmentPlan(seg, charge)
}

// SegmentPlanInto implements sim.PiecePlanner via the wrapped FC-DPM.
func (m *MPC) SegmentPlanInto(seg sim.Segment, charge float64, buf []sim.Piece) []sim.Piece {
	return m.inner.SegmentPlanInto(seg, charge, buf)
}

var (
	_ sim.Policy       = (*MPC)(nil)
	_ sim.PiecePlanner = (*MPC)(nil)
)
