package fault

import "fcdpm/internal/storage"

// FadeStore wraps a storage element with a runtime capacity-fade factor.
// The visible capacity is the inner capacity times the current scale;
// charge above the faded capacity at the moment of a fade step is lost
// (it physically leaks through the degraded dielectric / dead cells) and
// accounted in Lost.
type FadeStore struct {
	inner storage.Storage
	scale float64
	// Lost is the cumulative charge destroyed by fade steps, A-s.
	Lost float64
}

// NewFadeStore wraps inner at nominal (scale 1) capacity.
func NewFadeStore(inner storage.Storage) *FadeStore {
	return &FadeStore{inner: inner, scale: 1}
}

// SetScale applies a capacity-fade factor in (0, 1]. Stored charge above
// the new capacity is lost immediately.
func (f *FadeStore) SetScale(scale float64) {
	if scale <= 0 || scale > 1 {
		scale = clamp01(scale)
	}
	f.scale = scale
	if q, c := f.inner.Charge(), f.Capacity(); q > c {
		f.Lost += q - c
		f.inner.SetCharge(c)
	}
}

func clamp01(s float64) float64 {
	if s <= 0 {
		return 1e-9 // a dead-but-not-negative buffer
	}
	if s > 1 {
		return 1
	}
	return s
}

// Scale returns the current fade factor.
func (f *FadeStore) Scale() float64 { return f.scale }

// Capacity implements storage.Storage: the faded capacity.
func (f *FadeStore) Capacity() float64 { return f.inner.Capacity() * f.scale }

// Charge implements storage.Storage.
func (f *FadeStore) Charge() float64 { return f.inner.Charge() }

// SetCharge implements storage.Storage, clamped to the faded capacity.
func (f *FadeStore) SetCharge(q float64) {
	if c := f.Capacity(); q > c {
		q = c
	}
	f.inner.SetCharge(q)
}

// Apply implements storage.Storage. Charging is truncated at the faded
// capacity: what the inner element would have absorbed beyond it is bled.
func (f *FadeStore) Apply(current, dt float64) storage.Flow {
	if current > 0 && dt > 0 {
		room := f.Capacity() - f.Charge()
		if room < 0 {
			room = 0
		}
		delta := current * dt
		if delta > room {
			// Store only what the faded capacity admits; the rest goes
			// through the bleeder exactly as a full nominal buffer would.
			fl := f.inner.Apply(room/dt, dt)
			fl.Bled += delta - room
			return fl
		}
	}
	return f.inner.Apply(current, dt)
}

// Clone implements storage.Storage.
func (f *FadeStore) Clone() storage.Storage {
	return &FadeStore{inner: f.inner.Clone(), scale: f.scale, Lost: f.Lost}
}

var _ storage.Storage = (*FadeStore)(nil)
