package fault

import (
	"fmt"
	"math"

	"fcdpm/internal/storage"
)

// FadeStore wraps a storage element with a runtime capacity-fade factor.
// The visible capacity is the inner capacity times the current scale;
// charge above the faded capacity at the moment of a fade step is lost
// (it physically leaks through the degraded dielectric / dead cells) and
// accounted in Lost.
type FadeStore struct {
	inner storage.Storage
	scale float64
	// Lost is the cumulative charge destroyed by fade steps, A-s.
	Lost float64
}

// NewFadeStore wraps inner at nominal (scale 1) capacity.
func NewFadeStore(inner storage.Storage) *FadeStore {
	return &FadeStore{inner: inner, scale: 1}
}

// SetScale applies a capacity-fade factor in (0, 1]. Stored charge above
// the new capacity is lost immediately.
func (f *FadeStore) SetScale(scale float64) {
	if scale <= 0 || scale > 1 {
		scale = clamp01(scale)
	}
	f.scale = scale
	if q, c := f.inner.Charge(), f.Capacity(); q > c {
		f.Lost += q - c
		f.inner.SetCharge(c)
	}
}

func clamp01(s float64) float64 {
	if s <= 0 {
		return 1e-9 // a dead-but-not-negative buffer
	}
	if s > 1 {
		return 1
	}
	return s
}

// Scale returns the current fade factor.
func (f *FadeStore) Scale() float64 { return f.scale }

// Capacity implements storage.Storage: the faded capacity.
func (f *FadeStore) Capacity() float64 { return f.inner.Capacity() * f.scale }

// Charge implements storage.Storage.
func (f *FadeStore) Charge() float64 { return f.inner.Charge() }

// SetCharge implements storage.Storage, clamped to the faded capacity.
func (f *FadeStore) SetCharge(q float64) {
	if c := f.Capacity(); q > c {
		q = c
	}
	f.inner.SetCharge(q)
}

// Apply implements storage.Storage. Charging is truncated at the faded
// capacity: what the inner element would have absorbed beyond it is bled.
func (f *FadeStore) Apply(current, dt float64) storage.Flow {
	if current > 0 && dt > 0 {
		room := f.Capacity() - f.Charge()
		if room < 0 {
			room = 0
		}
		delta := current * dt
		if delta > room {
			// Store only what the faded capacity admits; the rest goes
			// through the bleeder exactly as a full nominal buffer would.
			fl := f.inner.Apply(room/dt, dt)
			fl.Bled += delta - room
			return fl
		}
	}
	return f.inner.Apply(current, dt)
}

// Clone implements storage.Storage.
func (f *FadeStore) Clone() storage.Storage {
	return &FadeStore{inner: f.inner.Clone(), scale: f.scale, Lost: f.Lost}
}

// RestoreFrom implements storage.Restorer: it copies the fade factor and
// loss accounting along with the inner element's state, so a faulted
// run's working store rewinds in place instead of falling back to a
// per-run Clone. It reports false — leaving the receiver untouched —
// when src is not a FadeStore or the inner element cannot restore.
func (f *FadeStore) RestoreFrom(src storage.Storage) bool {
	o, ok := src.(*FadeStore)
	if !ok {
		return false
	}
	r, ok := f.inner.(storage.Restorer)
	if !ok || !r.RestoreFrom(o.inner) {
		return false
	}
	f.scale = o.scale
	f.Lost = o.Lost
	return true
}

// Reset rewinds the wrapper to nominal capacity over the given inner
// element, clearing the loss accounting. It is the allocation-free
// equivalent of NewFadeStore(inner) for run-reuse machinery.
func (f *FadeStore) Reset(inner storage.Storage) {
	f.inner = inner
	f.scale = 1
	f.Lost = 0
}

// batchKeyer mirrors the BatchKey capability the sim batch runner probes
// for; fault cannot import sim, so the interface is restated locally.
type batchKeyer interface{ BatchKey() string }

// BatchKey implements the batch runner's lane-grouping capability: two
// FadeStores are interchangeable dynamics when their fade state matches
// and their inner elements are interchangeable. Without a content key
// for the inner element the pointer identity keeps distinct stores in
// distinct groups (an empty or colliding key would merge lanes that
// diverge).
func (f *FadeStore) BatchKey() string {
	inner := fmt.Sprintf("%p", f.inner)
	if bk, ok := f.inner.(batchKeyer); ok {
		inner = bk.BatchKey()
	}
	return fmt.Sprintf("fade|%x|%x|%s",
		math.Float64bits(f.scale), math.Float64bits(f.Lost), inner)
}

var (
	_ storage.Storage  = (*FadeStore)(nil)
	_ storage.Restorer = (*FadeStore)(nil)
)
