package fault

import (
	"math"
	"reflect"
	"testing"

	"fcdpm/internal/storage"
)

func TestStateComposition(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: StackDerate, Start: 10, Dur: 20, Magnitude: 0.5},
		{Kind: LoadSurge, Start: 15, Dur: 10, Magnitude: 2},
		{Kind: EfficiencyDegrade, Start: 0, Dur: 0, Magnitude: 0.2}, // permanent
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.StateAt(5)
	if st.DeliveryScale != 1 || st.LoadScale != 1 {
		t.Fatalf("unexpected derate/surge before onset: %+v", st)
	}
	if math.Abs(st.FuelScale-1/0.8) > 1e-12 {
		t.Fatalf("permanent efficiency degrade missing: %+v", st)
	}
	st = s.StateAt(17)
	if st.DeliveryScale != 0.5 || st.LoadScale != 2 {
		t.Fatalf("overlap window wrong: %+v", st)
	}
	if got := s.StateAt(30); got.DeliveryScale != 1 {
		t.Fatalf("derate did not clear at end: %+v", got)
	}
	if !s.StateAt(29.999).IsNominal() == false {
		// 29.999 still inside derate window
		t.Fatal("expected non-nominal just before boundary")
	}
}

func TestDropoutZeroesDelivery(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: StackDropout, Start: 0, Dur: 5}}}
	if got := s.StateAt(1).DeliveryScale; got != 0 {
		t.Fatalf("dropout delivery scale = %v, want 0", got)
	}
	if got := s.StateAt(5).DeliveryScale; got != 1 {
		t.Fatalf("half-open interval: state at end should be nominal, got %v", got)
	}
}

func TestBoundaries(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: StackDropout, Start: 10, Dur: 5},
		{Kind: LoadSurge, Start: 10, Dur: 10, Magnitude: 1.5},
		{Kind: CapacityFade, Start: 3, Dur: -1, Magnitude: 0.5}, // permanent
	}}
	want := []float64{3, 10, 15, 20}
	if got := s.Boundaries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("boundaries = %v, want %v", got, want)
	}
	in := NewInjector(s, 1)
	if b := in.NextBoundary(10); b != 15 {
		t.Fatalf("NextBoundary(10) = %v, want 15 (strictly after)", b)
	}
	if b := in.NextBoundary(20); !math.IsInf(b, 1) {
		t.Fatalf("NextBoundary past all = %v, want +Inf", b)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Event{
		{Kind: Kind(99), Start: 0},
		{Kind: StackDropout, Start: -1},
		{Kind: StackDerate, Start: 0, Magnitude: 1.5},
		{Kind: CapacityFade, Start: 0, Magnitude: -0.1},
		{Kind: LoadSurge, Start: 0, Magnitude: -2},
		{Kind: StackDropout, Start: math.NaN()},
	}
	for i, e := range bad {
		s := &Schedule{Events: []Event{e}}
		if err := s.Validate(); err == nil {
			t.Errorf("event %d (%+v) validated", i, e)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Horizon: 1000, Events: 12}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if len(a.Events) != 12 {
		t.Fatalf("got %d events, want 12", len(a.Events))
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(GenConfig{Horizon: 0, Events: 1}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Generate(GenConfig{Horizon: 10, Events: -1}); err == nil {
		t.Fatal("negative event count accepted")
	}
}

func TestFadeStore(t *testing.T) {
	fs := NewFadeStore(storage.MustSuperCap(10, 8))
	if fs.Capacity() != 10 || fs.Charge() != 8 {
		t.Fatalf("nominal wrap wrong: cap %v charge %v", fs.Capacity(), fs.Charge())
	}
	fs.SetScale(0.5)
	if fs.Capacity() != 5 {
		t.Fatalf("faded capacity %v, want 5", fs.Capacity())
	}
	if fs.Charge() != 5 {
		t.Fatalf("charge after fade %v, want clamped to 5", fs.Charge())
	}
	if fs.Lost != 3 {
		t.Fatalf("lost charge %v, want 3", fs.Lost)
	}
	// Charging beyond the faded capacity bleeds.
	fl := fs.Apply(2, 2) // +4 A-s into 0 A-s of room
	if fl.Stored != 0 || math.Abs(fl.Bled-4) > 1e-12 {
		t.Fatalf("overfull charge flow = %+v", fl)
	}
	// Partial room: recover then fill past the boundary.
	fs.SetCharge(4)
	fl = fs.Apply(1, 3) // +3 A-s into 1 A-s of room
	if math.Abs(fl.Stored-1) > 1e-12 || math.Abs(fl.Bled-2) > 1e-12 {
		t.Fatalf("boundary charge flow = %+v", fl)
	}
	if math.Abs(fs.Charge()-5) > 1e-12 {
		t.Fatalf("charge %v, want 5", fs.Charge())
	}
	// Discharge below empty still reports deficit through the inner model.
	fl = fs.Apply(-3, 2)
	if math.Abs(fl.Deficit-1) > 1e-12 {
		t.Fatalf("deficit flow = %+v", fl)
	}
	// Recovery: scale back up exposes capacity again but not lost charge.
	fs.SetScale(1)
	if fs.Capacity() != 10 || fs.Charge() != 0 {
		t.Fatalf("recovery wrong: cap %v charge %v", fs.Capacity(), fs.Charge())
	}
}

func TestInjectorDrain(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: StackDropout, Start: 10, Dur: 5},
		{Kind: LoadSurge, Start: 2, Dur: 4, Magnitude: 1.5},
	}}
	in := NewInjector(s, 1)
	tr := in.Drain(9)
	if len(tr) != 2 || tr[0].Event.Kind != LoadSurge || !tr[0].On || tr[1].On {
		t.Fatalf("drain(9) = %+v", tr)
	}
	tr = in.Drain(100)
	if len(tr) != 2 || tr[0].Event.Kind != StackDropout || !tr[0].On || tr[1].On {
		t.Fatalf("drain(100) = %+v", tr)
	}
	if tr := in.Drain(1e9); len(tr) != 0 {
		t.Fatalf("drain after exhaustion = %+v", tr)
	}
}

func TestNoisyDeterministic(t *testing.T) {
	a := NewInjector(&Schedule{}, 7)
	b := NewInjector(&Schedule{}, 7)
	for i := 0; i < 100; i++ {
		va, vb := a.Noisy(10, 0.3), b.Noisy(10, 0.3)
		if va != vb {
			t.Fatalf("draw %d differs: %v vs %v", i, va, vb)
		}
		if va < 0 {
			t.Fatalf("negative noisy value %v", va)
		}
	}
	if a.Noisy(5, 0) != 5 {
		t.Fatal("zero sigma must be identity")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

// TestFadeStoreApplyBoundaries pins the truncation arithmetic at its
// edges: a zero-length step must be a no-op whatever the current, a
// full buffer must bleed the entire inflow, a discharge spanning a fade
// step must see the updated capacity, and Lost must accumulate across
// repeated fades.
func TestFadeStoreApplyBoundaries(t *testing.T) {
	// dt == 0 with positive current: no charge moves, nothing bleeds.
	fs := NewFadeStore(storage.MustSuperCap(10, 4))
	fl := fs.Apply(3, 0)
	if fl.Stored != 0 || fl.Bled != 0 || fl.Deficit != 0 {
		t.Fatalf("dt=0 flow = %+v, want zero", fl)
	}
	if fs.Charge() != 4 {
		t.Fatalf("dt=0 moved charge: %v", fs.Charge())
	}

	// room == 0: the full inflow bleeds, the inner element sees a
	// zero-current step, and charge stays pinned at the faded capacity.
	fs = NewFadeStore(storage.MustSuperCap(10, 8))
	fs.SetScale(0.8) // capacity 8, charge already 8 → room 0
	fl = fs.Apply(2.5, 4)
	if fl.Stored != 0 || math.Abs(fl.Bled-10) > 1e-12 {
		t.Fatalf("room=0 flow = %+v, want all 10 A-s bled", fl)
	}
	if fs.Charge() != 8 {
		t.Fatalf("room=0 charge = %v, want 8", fs.Charge())
	}

	// Discharge across a fade step: the drain obeys the faded capacity
	// in force at each step, and the charge clamp happens at SetScale.
	fs = NewFadeStore(storage.MustSuperCap(10, 6))
	fs.SetScale(0.5) // capacity 5; 1 A-s lost immediately
	if fs.Lost != 1 || fs.Charge() != 5 {
		t.Fatalf("fade step: lost %v charge %v", fs.Lost, fs.Charge())
	}
	fl = fs.Apply(-2, 2) // drain 4 A-s of the remaining 5
	if math.Abs(fl.Stored-(-4)) > 1e-12 || fl.Deficit != 0 {
		t.Fatalf("post-fade discharge flow = %+v", fl)
	}
	if math.Abs(fs.Charge()-1) > 1e-12 {
		t.Fatalf("post-fade charge = %v, want 1", fs.Charge())
	}

	// Cumulative Lost bookkeeping across repeated fades.
	fs.SetCharge(5)
	fs.SetScale(0.3) // capacity 3: +2 lost on top of the earlier 1
	if math.Abs(fs.Lost-3) > 1e-12 {
		t.Fatalf("cumulative lost = %v, want 3", fs.Lost)
	}
	fs.SetScale(0.1) // capacity 1: +2 more
	if math.Abs(fs.Lost-5) > 1e-12 {
		t.Fatalf("cumulative lost = %v, want 5", fs.Lost)
	}
}

// TestFadeStoreSetScaleClamps pins the out-of-range behavior: scales at
// or below zero clamp to a dead-but-positive buffer, scales above one
// clamp to nominal, and neither produces NaN capacity.
func TestFadeStoreSetScaleClamps(t *testing.T) {
	fs := NewFadeStore(storage.MustSuperCap(10, 5))
	fs.SetScale(0)
	if fs.Scale() != 1e-9 {
		t.Fatalf("scale(0) = %v, want 1e-9", fs.Scale())
	}
	if c := fs.Capacity(); c != 1e-8 {
		t.Fatalf("dead capacity = %v, want 1e-8", c)
	}
	fs.SetScale(-3)
	if fs.Scale() != 1e-9 {
		t.Fatalf("scale(-3) = %v, want 1e-9", fs.Scale())
	}
	fs.SetScale(7)
	if fs.Scale() != 1 {
		t.Fatalf("scale(7) = %v, want 1", fs.Scale())
	}
	if fs.Capacity() != 10 {
		t.Fatalf("recovered capacity = %v", fs.Capacity())
	}
}

// TestFadeStoreRestoreFrom pins the Restorer capability faulted run
// reuse depends on: scale and Lost must come back along with the inner
// element's charge, and mismatched shapes must refuse without mutating.
func TestFadeStoreRestoreFrom(t *testing.T) {
	work := NewFadeStore(storage.MustSuperCap(10, 8))
	work.SetScale(0.5)
	work.Apply(-1, 2)
	snap := NewFadeStore(storage.MustSuperCap(10, 8))
	if !work.RestoreFrom(snap) {
		t.Fatal("RestoreFrom(same-shape snapshot) failed")
	}
	if work.Scale() != 1 || work.Lost != 0 || work.Charge() != 8 || work.Capacity() != 10 {
		t.Fatalf("restored state: scale %v lost %v charge %v cap %v",
			work.Scale(), work.Lost, work.Charge(), work.Capacity())
	}
	// Restoring from a non-FadeStore or a different inner kind refuses.
	if work.RestoreFrom(storage.MustSuperCap(10, 8)) {
		t.Fatal("RestoreFrom(bare storage) must refuse")
	}
	inner, err := storage.NewLiIon(10, 0.6, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	liion := NewFadeStore(inner)
	if work.RestoreFrom(liion) {
		t.Fatal("RestoreFrom(different inner kind) must refuse")
	}
}

// TestFadeStoreBatchKey checks lane-grouping keys: equal fade state over
// equal inner parameters collapses, any divergence separates.
func TestFadeStoreBatchKey(t *testing.T) {
	a := NewFadeStore(storage.MustSuperCap(10, 8))
	b := NewFadeStore(storage.MustSuperCap(10, 8))
	if a.BatchKey() != b.BatchKey() {
		t.Fatal("identical fade stores keyed apart")
	}
	b.SetScale(0.5)
	if a.BatchKey() == b.BatchKey() {
		t.Fatal("diverged fade state keyed together")
	}
	c := NewFadeStore(storage.MustSuperCap(12, 8))
	if a.BatchKey() == c.BatchKey() {
		t.Fatal("different inner capacity keyed together")
	}
}

// TestInjectorReset pins the in-place rewind: after Reset, the drain
// sequence and the noise stream must replay exactly as a fresh injector.
func TestInjectorReset(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: StackDropout, Start: 10, Dur: 5},
		{Kind: LoadSurge, Start: 2, Dur: 4, Magnitude: 1.5},
	}}
	in := NewInjector(s, 42)
	firstDrain := in.Drain(100)
	var firstNoise []float64
	for i := 0; i < 10; i++ {
		firstNoise = append(firstNoise, in.Noisy(10, 0.3))
	}
	in.Reset()
	if !reflect.DeepEqual(in.Drain(100), firstDrain) {
		t.Fatal("drain sequence differs after Reset")
	}
	for i, want := range firstNoise {
		if got := in.Noisy(10, 0.3); got != want {
			t.Fatalf("noise draw %d differs after Reset: %v vs %v", i, got, want)
		}
	}
}
