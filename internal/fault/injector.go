package fault

import (
	"math"

	"fcdpm/internal/numeric"
)

// Transition is one fault becoming active or clearing, for the run's
// event log.
type Transition struct {
	T     float64
	Event Event
	// On is true at fault onset, false when it clears.
	On bool
}

// Injector adapts a Schedule for a single simulation run: it answers
// point-in-time state queries, locates the next instant the state can
// change (so integration can split exactly at fault boundaries), draws
// deterministic sensor noise, and emits onset/clear transitions for the
// run's event log. An Injector is single-goroutine state; build a fresh
// one per run.
type Injector struct {
	sched      *Schedule
	boundaries []float64
	rng        *numeric.RNG
	seed       uint64
	// all is the full time-ordered transition list, built once; pending
	// is the not-yet-drained tail. Drain only re-slices, never mutates,
	// so Reset can rewind pending to all without rebuilding.
	all     []Transition
	pending []Transition
}

// NewInjector prepares a run-scoped injector over the schedule. seed
// drives the sensor-noise stream (the schedule itself is already fully
// deterministic).
func NewInjector(sched *Schedule, seed uint64) *Injector {
	in := &Injector{
		sched:      sched,
		boundaries: sched.Boundaries(),
		rng:        numeric.NewRNG(seed),
		seed:       seed,
	}
	if sched != nil {
		for _, e := range sched.Events {
			in.all = append(in.all, Transition{T: e.Start, Event: e, On: true})
			if end := e.End(); !math.IsInf(end, 1) {
				in.all = append(in.all, Transition{T: end, Event: e, On: false})
			}
		}
		// Stable time order; equal instants keep schedule order.
		for i := 1; i < len(in.all); i++ {
			for j := i; j > 0 && in.all[j].T < in.all[j-1].T; j-- {
				in.all[j], in.all[j-1] = in.all[j-1], in.all[j]
			}
		}
	}
	in.pending = in.all
	return in
}

// Reset rewinds the injector for a fresh run without allocating: the
// pending list is restored to the full transition sequence and the
// noise stream reseeded, so a reused injector reproduces a freshly
// constructed one exactly.
func (in *Injector) Reset() {
	in.pending = in.all
	in.rng.Reseed(in.seed)
}

// StateAt returns the composed fault state at instant t.
func (in *Injector) StateAt(t float64) State { return in.sched.StateAt(t) }

// NextBoundary returns the first instant strictly after t at which the
// fault state can change, or +Inf when none remains.
func (in *Injector) NextBoundary(t float64) float64 {
	for _, b := range in.boundaries {
		if b > t {
			return b
		}
	}
	return math.Inf(1)
}

// Drain returns the transitions with onset/clear instants not after t, in
// time order, removing them from the pending list. The simulator calls it
// as time advances to populate the run's event log.
func (in *Injector) Drain(t float64) []Transition {
	n := 0
	for n < len(in.pending) && in.pending[n].T <= t {
		n++
	}
	out := in.pending[:n:n]
	in.pending = in.pending[n:]
	return out
}

// Noisy perturbs a sensed value with multiplicative Gaussian noise of the
// given relative stddev, floored at zero (periods and currents cannot go
// negative). The draw sequence is deterministic for a fixed seed and call
// order.
func (in *Injector) Noisy(v, sigma float64) float64 {
	if sigma <= 0 || v == 0 {
		return v
	}
	out := v * in.rng.Norm(1, sigma)
	if out < 0 {
		return 0
	}
	return out
}
