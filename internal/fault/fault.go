// Package fault models the failure modes of the hybrid power source so
// that policies can be evaluated under the conditions real deployments
// actually see: fuel-cell stack dropout and voltage droop, membrane
// dry-out (efficiency degradation), charge-storage capacity fade, DC-DC
// converter brown-outs, dirty sensors feeding the predictors, and load
// surges beyond the traced workload.
//
// A fault run is described by a Schedule — a list of timed Events — that
// is deterministic and seed-reproducible: the same schedule over the same
// trace yields byte-identical simulation results. The simulator composes
// the events active at any instant into a State (a set of derating
// factors) and integrates each constant-load piece exactly between fault
// boundaries, so the analytical-integration guarantee of the sim package
// survives fault injection.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind identifies a fault class.
type Kind int

// Fault classes, roughly ordered from source to load.
const (
	// StackDropout cuts the FC system output entirely for the event
	// window — a stack stall, fuel starvation, or emergency shutdown.
	// Magnitude is ignored (delivery scale is 0).
	StackDropout Kind = iota
	// StackDerate limits the deliverable FC output to a fraction of the
	// nominal maximum — voltage droop under ageing or partial cell
	// failure. Magnitude is the remaining fraction in (0, 1).
	StackDerate
	// EfficiencyDegrade models membrane dry-out / catalyst poisoning:
	// the efficiency curve drops (α↓, β↑), so every delivered amp burns
	// more fuel. Magnitude is the fractional efficiency loss in [0, 1);
	// fuel per amp scales by 1/(1−Magnitude).
	EfficiencyDegrade
	// CapacityFade shrinks the charge-storage capacity — supercapacitor
	// ESR growth or battery fade. Magnitude is the remaining capacity
	// fraction in (0, 1]. Charge above the faded capacity is lost.
	CapacityFade
	// DCDCDropout is a converter brown-out: no power reaches the bus for
	// the event window. Electrically equivalent to StackDropout for the
	// charge balance, but logged as its own class. Magnitude is ignored.
	DCDCDropout
	// SensorNoise corrupts the measurements feeding the period/current
	// predictors with multiplicative Gaussian noise. Magnitude is the
	// relative standard deviation (e.g. 0.3 = 30 %).
	SensorNoise
	// LoadSurge scales the embedded-system load current — a thermal
	// event, a stuck peripheral, or traffic beyond the traced workload.
	// Magnitude is the multiplier (> 1).
	LoadSurge

	numKinds = iota
)

// Kinds lists every fault class once, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case StackDropout:
		return "stack-dropout"
	case StackDerate:
		return "stack-derate"
	case EfficiencyDegrade:
		return "efficiency-degrade"
	case CapacityFade:
		return "capacity-fade"
	case DCDCDropout:
		return "dcdc-dropout"
	case SensorNoise:
		return "sensor-noise"
	case LoadSurge:
		return "load-surge"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a fault-class name as printed by Kind.String.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q", name)
}

// Event is one scheduled fault: a class, an onset time, a duration, and a
// class-specific magnitude (see the Kind constants for semantics).
type Event struct {
	Kind  Kind    `json:"kind"`
	Start float64 `json:"start"`    // onset, seconds of simulated time
	Dur   float64 `json:"duration"` // seconds; +Inf or <= 0 means permanent
	// Magnitude is the class-specific severity; 0 selects a sensible
	// default severity for the class.
	Magnitude float64 `json:"magnitude"`
}

// End returns the instant the event clears, +Inf for permanent faults.
func (e Event) End() float64 {
	if e.Dur <= 0 || math.IsInf(e.Dur, 1) {
		return math.Inf(1)
	}
	return e.Start + e.Dur
}

// active reports whether the event covers instant t. Intervals are
// half-open [Start, End) so adjacent events compose without overlap.
func (e Event) active(t float64) bool { return t >= e.Start && t < e.End() }

// defaultMagnitude supplies the class default when Magnitude is zero.
func (e Event) defaultMagnitude() float64 {
	if e.Magnitude != 0 {
		return e.Magnitude
	}
	switch e.Kind {
	case StackDerate:
		return 0.5 // half the nominal ceiling remains
	case EfficiencyDegrade:
		return 0.25 // 25 % efficiency loss
	case CapacityFade:
		return 0.5 // half the capacity remains
	case SensorNoise:
		return 0.3 // 30 % relative noise
	case LoadSurge:
		return 1.5 // 50 % overload
	default:
		return 0
	}
}

// Validate reports whether the event is well-formed.
func (e Event) Validate() error {
	if e.Kind < 0 || int(e.Kind) >= numKinds {
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	if e.Start < 0 || math.IsNaN(e.Start) || math.IsInf(e.Start, 0) {
		return fmt.Errorf("fault: %s event with bad start %v", e.Kind, e.Start)
	}
	if math.IsNaN(e.Dur) || math.IsInf(e.Dur, -1) {
		return fmt.Errorf("fault: %s event with bad duration %v", e.Kind, e.Dur)
	}
	m := e.defaultMagnitude()
	switch e.Kind {
	case StackDerate:
		if m <= 0 || m >= 1 {
			return fmt.Errorf("fault: stack-derate magnitude %v outside (0, 1)", m)
		}
	case EfficiencyDegrade:
		if m < 0 || m >= 1 {
			return fmt.Errorf("fault: efficiency-degrade magnitude %v outside [0, 1)", m)
		}
	case CapacityFade:
		if m <= 0 || m > 1 {
			return fmt.Errorf("fault: capacity-fade magnitude %v outside (0, 1]", m)
		}
	case SensorNoise:
		if m < 0 {
			return fmt.Errorf("fault: negative sensor-noise magnitude %v", m)
		}
	case LoadSurge:
		if m <= 0 {
			return fmt.Errorf("fault: non-positive load-surge magnitude %v", m)
		}
	}
	return nil
}

// State is the composed effect of all faults active at one instant. The
// zero value is NOT nominal; use Nominal().
type State struct {
	// DeliveryScale multiplies the maximum deliverable FC output
	// (1 nominal, 0 during a dropout). Requested output above the scaled
	// ceiling is simply not delivered; the storage covers the difference
	// or a deficit results.
	DeliveryScale float64
	// FuelScale multiplies the stack current drawn per delivered amp
	// (≥ 1 under efficiency degradation).
	FuelScale float64
	// CapacityScale multiplies the storage capacity (≤ 1 under fade).
	CapacityScale float64
	// SensorSigma is the relative stddev of multiplicative noise applied
	// to the measurements the predictors observe (0 = clean).
	SensorSigma float64
	// LoadScale multiplies the embedded-system load current.
	LoadScale float64
}

// Nominal returns the no-fault state.
func Nominal() State {
	return State{DeliveryScale: 1, FuelScale: 1, CapacityScale: 1, SensorSigma: 0, LoadScale: 1}
}

// IsNominal reports whether the state perturbs nothing.
func (s State) IsNominal() bool { return s == Nominal() }

// apply folds one event into the state.
func (s State) apply(e Event) State {
	m := e.defaultMagnitude()
	switch e.Kind {
	case StackDropout, DCDCDropout:
		s.DeliveryScale = 0
	case StackDerate:
		s.DeliveryScale *= m
	case EfficiencyDegrade:
		s.FuelScale /= 1 - m
	case CapacityFade:
		s.CapacityScale *= m
	case SensorNoise:
		if m > s.SensorSigma {
			s.SensorSigma = m
		}
	case LoadSurge:
		s.LoadScale *= m
	}
	return s
}

// Schedule is a deterministic fault plan: a set of events over simulated
// time. The zero value is an empty (all-nominal) schedule.
type Schedule struct {
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// StateAt composes the events active at instant t.
func (s *Schedule) StateAt(t float64) State {
	st := Nominal()
	if s == nil {
		return st
	}
	for _, e := range s.Events {
		if e.active(t) {
			st = st.apply(e)
		}
	}
	return st
}

// Boundaries returns the sorted distinct instants at which the composed
// fault state can change (event starts and ends), ignoring non-finite
// ends.
func (s *Schedule) Boundaries() []float64 {
	if s == nil {
		return nil
	}
	var bs []float64
	for _, e := range s.Events {
		bs = append(bs, e.Start)
		if end := e.End(); !math.IsInf(end, 1) {
			bs = append(bs, end)
		}
	}
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// String summarizes the schedule for logs.
func (s *Schedule) String() string {
	if s.Empty() {
		return "fault schedule: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault schedule (%d events):", len(s.Events))
	for _, e := range s.Events {
		if math.IsInf(e.End(), 1) {
			fmt.Fprintf(&b, " %s@%.6gs..∞", e.Kind, e.Start)
		} else {
			fmt.Fprintf(&b, " %s@%.6gs+%.6gs", e.Kind, e.Start, e.Dur)
		}
		if e.Magnitude != 0 {
			fmt.Fprintf(&b, "×%.6g", e.Magnitude)
		}
	}
	return b.String()
}
