package fault

import (
	"fmt"

	"fcdpm/internal/numeric"
)

// GenConfig parameterizes the seeded random fault-schedule generator used
// by fault sweeps and the fuzz harness.
type GenConfig struct {
	// Seed drives the deterministic generator.
	Seed uint64
	// Horizon is the simulated-time span events are drawn over, seconds.
	Horizon float64
	// Events is how many events to draw.
	Events int
	// Kinds restricts the classes drawn; empty means all classes.
	Kinds []Kind
	// MinDur and MaxDur bound event durations; zeros default to
	// [Horizon/50, Horizon/5].
	MinDur, MaxDur float64
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("fault: non-positive generation horizon %v", c.Horizon)
	case c.Events < 0:
		return fmt.Errorf("fault: negative event count %d", c.Events)
	case c.MinDur < 0 || c.MaxDur < 0 || (c.MaxDur > 0 && c.MaxDur < c.MinDur):
		return fmt.Errorf("fault: bad duration bounds [%v, %v]", c.MinDur, c.MaxDur)
	}
	for _, k := range c.Kinds {
		if k < 0 || int(k) >= numKinds {
			return fmt.Errorf("fault: unknown kind %d in generator config", int(k))
		}
	}
	return nil
}

// Generate draws a seed-reproducible random schedule: event onsets are
// uniform over the horizon, durations uniform over the configured bounds,
// and magnitudes uniform over each class's sensible severity range. Two
// calls with equal configs produce identical schedules.
func Generate(cfg GenConfig) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	lo, hi := cfg.MinDur, cfg.MaxDur
	if lo == 0 && hi == 0 {
		lo, hi = cfg.Horizon/50, cfg.Horizon/5
	}
	if hi <= lo {
		hi = lo + 1e-9
	}
	rng := numeric.NewRNG(cfg.Seed)
	sched := &Schedule{}
	for i := 0; i < cfg.Events; i++ {
		k := kinds[rng.Intn(len(kinds))]
		e := Event{
			Kind:  k,
			Start: rng.Uniform(0, cfg.Horizon),
			Dur:   rng.Uniform(lo, hi),
		}
		switch k {
		case StackDerate:
			e.Magnitude = rng.Uniform(0.2, 0.9)
		case EfficiencyDegrade:
			e.Magnitude = rng.Uniform(0.05, 0.5)
		case CapacityFade:
			e.Magnitude = rng.Uniform(0.3, 0.95)
		case SensorNoise:
			e.Magnitude = rng.Uniform(0.05, 0.6)
		case LoadSurge:
			e.Magnitude = rng.Uniform(1.1, 2.5)
		}
		sched.Events = append(sched.Events, e)
	}
	return sched, sched.Validate()
}
