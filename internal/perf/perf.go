// Package perf is the benchmark-regression harness behind `fcdpm bench`:
// it runs a fixed suite of micro- and macro-benchmarks through the
// standard testing.Benchmark driver, writes the measurements to a
// BENCH_<timestamp>.json artifact, and compares a fresh run against the
// latest stored artifact so CI can fail on throughput regressions.
//
// The suite is intentionally small and stable — a regression gate is only
// useful when the benchmark names persist across commits:
//
//   - optimize-slot: one §3 per-slot optimization (FC-DPM's online cost)
//   - stack-current: one Eq 4 fuel-map evaluation
//   - memo-fuel: one memoized fuel-map evaluation (the simulator's path)
//   - sim-throughput: a full camcorder-trace FC-DPM run on a reused
//     runner at the fuel-only record level (slots/sec is the headline)
//   - experiment1: the complete Table 2 three-policy comparison
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Metric is one benchmark's measurement.
type Metric struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SlotsPerSec is the simulated-slot throughput, only set for
	// benchmarks that process a trace (0 otherwise).
	SlotsPerSec float64 `json:"slots_per_sec,omitempty"`
}

// Artifact is one stored benchmark run.
type Artifact struct {
	Timestamp string   `json:"timestamp"` // RFC 3339
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Repeat    int      `json:"repeat"`
	Metrics   []Metric `json:"metrics"`
}

// Metric returns the named measurement, or nil.
func (a *Artifact) Metric(name string) *Metric {
	for i := range a.Metrics {
		if a.Metrics[i].Name == name {
			return &a.Metrics[i]
		}
	}
	return nil
}

// filePrefix and fileExt frame artifact names as BENCH_<stamp>.json with a
// lexically sortable stamp, so Latest can pick the newest by name alone.
const (
	filePrefix = "BENCH_"
	fileExt    = ".json"
	stampFmt   = "20060102-150405"
)

// Write stores the artifact in dir as BENCH_<timestamp>.json and returns
// the path. The directory is created if needed.
func Write(dir string, a *Artifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	ts, err := time.Parse(time.RFC3339, a.Timestamp)
	if err != nil {
		return "", fmt.Errorf("perf: bad artifact timestamp %q: %w", a.Timestamp, err)
	}
	path := filepath.Join(dir, filePrefix+ts.UTC().Format(stampFmt)+fileExt)
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	return path, nil
}

// Latest loads the newest BENCH_*.json artifact in dir (by the sortable
// name stamp). A missing directory or an empty one returns (nil, "", nil)
// — no baseline yet is not an error.
func Latest(dir string) (*Artifact, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", fmt.Errorf("perf: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, fileExt) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", nil
	}
	sort.Strings(names)
	path := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("perf: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, "", fmt.Errorf("perf: %s: %w", path, err)
	}
	return &a, path, nil
}

// newArtifact stamps an empty artifact with the build identity.
func newArtifact(repeat int) *Artifact {
	return &Artifact{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Repeat:    repeat,
	}
}
