package perf

import "fmt"

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name     string
	OldNs    float64
	NewNs    float64
	Ratio    float64 // NewNs/OldNs - 1; positive is slower
	OldAlloc int64
	NewAlloc int64
	// Regressed marks a time regression beyond the gate threshold.
	// Alloc-count increases are reported but never fatal — allocation
	// noise (e.g. a map rehash boundary) should not break CI.
	Regressed bool
}

// String formats the delta for the bench report.
func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	} else if d.Ratio < -0.02 {
		verdict = "improved"
	}
	s := fmt.Sprintf("%-16s %12.0f -> %12.0f ns/op  %+6.1f%%  %s",
		d.Name, d.OldNs, d.NewNs, 100*d.Ratio, verdict)
	if d.NewAlloc != d.OldAlloc {
		s += fmt.Sprintf("  (allocs %d -> %d)", d.OldAlloc, d.NewAlloc)
	}
	return s
}

// Compare diffs cur against the prev baseline with the given relative
// time-regression threshold (0.15 = fail beyond +15 %). Benchmarks present
// on only one side are skipped — renaming suite entries must not fail the
// gate retroactively. The second result reports whether any benchmark
// regressed.
//
// Zero overlap is an error, not a pass: a wholesale suite rename (or a
// stale baseline from another branch) used to make the gate pass
// vacuously — every current benchmark skipped, nothing compared, CI
// green. The caller must treat the error as a gate failure and refresh
// the baseline deliberately.
func Compare(prev, cur *Artifact, threshold float64) ([]Delta, bool, error) {
	var out []Delta
	regressed := false
	for _, m := range cur.Metrics {
		old := prev.Metric(m.Name)
		if old == nil || old.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:     m.Name,
			OldNs:    old.NsPerOp,
			NewNs:    m.NsPerOp,
			Ratio:    m.NsPerOp/old.NsPerOp - 1,
			OldAlloc: old.AllocsPerOp,
			NewAlloc: m.AllocsPerOp,
		}
		if d.Ratio > threshold {
			d.Regressed = true
			regressed = true
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf(
			"perf: no overlapping benchmarks between baseline (%d metrics) and current (%d metrics); the gate would pass vacuously — refresh the baseline",
			len(prev.Metrics), len(cur.Metrics))
	}
	return out, regressed, nil
}
