package perf

import (
	"fmt"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/exp"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/multistack"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// Benchmark is one named entry of the regression suite.
type Benchmark struct {
	Name string
	// Slots is the number of simulated slots per op for throughput
	// benchmarks (0 for micro-benchmarks).
	Slots int
	Fn    func(b *testing.B)
}

// Suite builds the regression suite. With short set, the macro benchmarks
// are skipped (CI smoke runs on shared runners where a full trace run per
// repetition is too noisy to gate on anyway).
func Suite(short bool) ([]Benchmark, error) {
	sys := fuelcell.PaperSystem()
	dev := device.Camcorder()

	suite := []Benchmark{
		{
			Name: "optimize-slot",
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, err := fcopt.Optimize(sys, 6, fcopt.Slot{
						Ti: 14, IldI: 0.2, Ta: 3.03, IldA: 1.22, Cini: 1, Cend: 1,
						Sleep:    true,
						Overhead: &fcopt.Overhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "stack-current",
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += sys.StackCurrent(0.1 + float64(i%11)*0.1)
				}
				_ = sink
			},
		},
		{
			Name: "memo-fuel",
			Fn: func(b *testing.B) {
				memo := fuelcell.NewMemo(sys)
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += memo.Fuel(0.1+float64(i%11)*0.1, 1)
				}
				_ = sink
			},
		},
	}
	if short {
		return suite, nil
	}

	trace, err := workload.Camcorder(workload.DefaultCamcorderConfig())
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	r, err := sim.NewRunner(sim.Config{
		Sys: sys, Dev: dev, Store: storage.MustSuperCap(6, 1),
		Trace: trace, Policy: policy.NewFCDPM(sys, dev),
		Record: sim.RecordFuelOnly,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	suite = append(suite,
		Benchmark{
			Name:  "sim-throughput",
			Slots: trace.Len(),
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := r.Run(); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)
	for _, k := range []int{1, 8, 64} {
		br, err := batchRunner(sys, dev, trace, k)
		if err != nil {
			return nil, fmt.Errorf("perf: %w", err)
		}
		suite = append(suite, Benchmark{
			Name:  fmt.Sprintf("batch-slot-throughput-k%d", k),
			Slots: trace.Len() * k,
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := br.Run()
					if err != nil {
						b.Fatal(err)
					}
					for _, lr := range out {
						if lr.Err != nil {
							b.Fatal(lr.Err)
						}
					}
				}
			},
		})
	}
	// Multi-stack aggregate source: a K=4 degraded-mix water-filling rack
	// on the racksurge workload. The rack pre-solves its allocation into
	// a table, so per-slot cost must match a single-stack run — this
	// benchmark gates that the aggregate seam stays allocation-free.
	rsTrace, err := workload.RackSurge(workload.DefaultRackSurgeConfig())
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	rack, err := multistack.Uniform(sys, 4, multistack.WaterFill{}, []float64{0, 0.3})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	rsys := rack.System()
	mr, err := sim.NewRunner(sim.Config{
		Sys: rsys, Dev: device.Synthetic(), Store: storage.MustSuperCap(24, 4),
		Trace: rsTrace, Policy: policy.NewASAP(rsys),
		Record: sim.RecordFuelOnly,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	suite = append(suite,
		Benchmark{
			Name:  "multistack-slot-throughput-k4",
			Slots: rsTrace.Len(),
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := mr.Run(); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)
	suite = append(suite,
		Benchmark{
			Name:  "experiment1",
			Slots: trace.Len() * 3, // three policy rows per op
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := exp.Experiment1(1); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	)
	return suite, nil
}

// batchRunner builds the k-lane regression batch over the camcorder
// trace: eight distinct dynamics (Conv, ASAP, FC-DPM, quantized FC-DPM
// at five level counts) replicated round-robin, warmed up once so the
// gated repetitions measure the zero-allocation steady state.
func batchRunner(sys *fuelcell.System, dev *device.Model, trace *workload.Trace, k int) (*sim.BatchRunner, error) {
	quant := func(n int) (sim.Policy, error) {
		return policy.NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, n))
	}
	variants := []func() (sim.Policy, error){
		func() (sim.Policy, error) { return policy.NewConv(sys), nil },
		func() (sim.Policy, error) { return policy.NewASAP(sys), nil },
		func() (sim.Policy, error) { return policy.NewFCDPM(sys, dev), nil },
		func() (sim.Policy, error) { return quant(3) },
		func() (sim.Policy, error) { return quant(4) },
		func() (sim.Policy, error) { return quant(6) },
		func() (sim.Policy, error) { return quant(8) },
		func() (sim.Policy, error) { return quant(12) },
	}
	lanes := make([]sim.Lane, k)
	for i := range lanes {
		p, err := variants[i%len(variants)]()
		if err != nil {
			return nil, err
		}
		lanes[i] = sim.Lane{Cfg: sim.Config{
			Sys: sys, Dev: dev, Store: storage.MustSuperCap(6, 1),
			Trace: trace, Policy: p, Record: sim.RecordFuelOnly,
		}}
	}
	br, err := sim.NewBatchRunner(lanes)
	if err != nil {
		return nil, err
	}
	if _, err := br.Run(); err != nil {
		return nil, err
	}
	return br, nil
}

// Run executes the suite repeat times per benchmark, keeping each
// benchmark's best (fastest) repetition — the standard way to strip
// scheduler noise from a regression gate.
func Run(repeat int, short bool) (*Artifact, error) {
	if repeat < 1 {
		repeat = 1
	}
	suite, err := Suite(short)
	if err != nil {
		return nil, err
	}
	art := newArtifact(repeat)
	for _, bench := range suite {
		var best Metric
		for rep := 0; rep < repeat; rep++ {
			res := testing.Benchmark(bench.Fn)
			if res.N == 0 {
				return nil, fmt.Errorf("perf: benchmark %s did not run (did it fail?)", bench.Name)
			}
			m := Metric{
				Name:        bench.Name,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if bench.Slots > 0 && m.NsPerOp > 0 {
				m.SlotsPerSec = float64(bench.Slots) * 1e9 / m.NsPerOp
			}
			if rep == 0 || m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		art.Metrics = append(art.Metrics, best)
	}
	return art, nil
}
