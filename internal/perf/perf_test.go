package perf

import (
	"testing"
	"time"
)

func artifactAt(ts string, metrics ...Metric) *Artifact {
	a := newArtifact(1)
	a.Timestamp = ts
	a.Metrics = metrics
	return a
}

func TestWriteLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()

	if a, path, err := Latest(dir); err != nil || a != nil || path != "" {
		t.Fatalf("empty dir: got (%v, %q, %v), want (nil, \"\", nil)", a, path, err)
	}
	if a, _, err := Latest(dir + "/missing"); err != nil || a != nil {
		t.Fatalf("missing dir: got (%v, %v), want (nil, nil)", a, err)
	}

	old := artifactAt("2026-01-02T03:04:05Z", Metric{Name: "m", NsPerOp: 100})
	cur := artifactAt("2026-01-03T03:04:05Z", Metric{Name: "m", NsPerOp: 50})
	for _, a := range []*Artifact{old, cur} {
		if _, err := Write(dir, a); err != nil {
			t.Fatal(err)
		}
	}
	got, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != cur.Timestamp {
		t.Fatalf("Latest loaded %s (%s), want the newer %s", got.Timestamp, path, cur.Timestamp)
	}
	if m := got.Metric("m"); m == nil || m.NsPerOp != 50 {
		t.Fatalf("Metric(m) = %+v, want ns/op 50", m)
	}
}

func TestWriteRejectsBadTimestamp(t *testing.T) {
	a := newArtifact(1)
	a.Timestamp = "not-a-time"
	if _, err := Write(t.TempDir(), a); err == nil {
		t.Fatal("Write accepted a malformed timestamp")
	}
}

func TestCompare(t *testing.T) {
	prev := artifactAt("2026-01-02T03:04:05Z",
		Metric{Name: "fast", NsPerOp: 100, AllocsPerOp: 0},
		Metric{Name: "slow", NsPerOp: 100, AllocsPerOp: 1},
		Metric{Name: "gone", NsPerOp: 100},
	)
	cur := artifactAt("2026-01-03T03:04:05Z",
		Metric{Name: "fast", NsPerOp: 90, AllocsPerOp: 0},
		Metric{Name: "slow", NsPerOp: 130, AllocsPerOp: 2},
		Metric{Name: "new", NsPerOp: 100},
	)
	deltas, regressed, err := Compare(prev, cur, 0.15)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !regressed {
		t.Fatal("Compare missed the +30% regression")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (unmatched names skipped)", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["fast"].Regressed {
		t.Fatal("an improvement was flagged as a regression")
	}
	if !byName["slow"].Regressed {
		t.Fatal("the +30% slowdown was not flagged")
	}

	// At a looser threshold the same data passes: alloc increases alone
	// must never fail the gate.
	if _, regressed, err := Compare(prev, cur, 0.5); err != nil || regressed {
		t.Fatalf("alloc-count increase failed the gate at a passing time threshold (err %v)", err)
	}
}

func TestCompareZeroOverlapErrors(t *testing.T) {
	// Regression: a wholesale suite rename once made the gate pass
	// vacuously — every current benchmark was "present on only one side",
	// so Compare returned (nil, false) and CI went green with nothing
	// compared. Zero overlap must be an explicit error.
	prev := artifactAt("2026-01-02T03:04:05Z",
		Metric{Name: "old-name-a", NsPerOp: 100},
		Metric{Name: "old-name-b", NsPerOp: 200},
	)
	cur := artifactAt("2026-01-03T03:04:05Z",
		Metric{Name: "new-name-a", NsPerOp: 500},
		Metric{Name: "new-name-b", NsPerOp: 900},
	)
	deltas, regressed, err := Compare(prev, cur, 0.15)
	if err == nil {
		t.Fatalf("Compare(zero overlap) = (%v, %v, nil), want error", deltas, regressed)
	}
	// Both empty artifacts and a baseline emptied by corruption hit the
	// same guard.
	if _, _, err := Compare(artifactAt("2026-01-02T03:04:05Z"), cur, 0.15); err == nil {
		t.Fatal("Compare(empty baseline) passed vacuously")
	}
}

func TestRunShortSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs nested benchmarks")
	}
	start := time.Now()
	art, err := Run(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Metrics) == 0 {
		t.Fatal("short suite produced no metrics")
	}
	for _, m := range art.Metrics {
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: ns/op %v not positive", m.Name, m.NsPerOp)
		}
	}
	t.Logf("short suite: %d metrics in %s", len(art.Metrics), time.Since(start))
}
