package vfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"fcdpm/internal/obs"
)

func TestIsDiskFull(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrDiskFull, true},
		{fmt.Errorf("put: %w", ErrDiskFull), true},
		{&WriteError{Op: "append", Path: "x", Err: ErrDiskFull}, true},
		{syscall.ENOSPC, true},
		{&WriteError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{syscall.EDQUOT, true},
		{os.ErrPermission, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsDiskFull(c.err); got != c.want {
			t.Errorf("IsDiskFull(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestWriteErrorWrapping(t *testing.T) {
	we := &WriteError{Op: "append", Path: "/tmp/x", Err: ErrDiskFull}
	if !errors.Is(we, ErrDiskFull) {
		t.Fatal("WriteError does not unwrap to its cause")
	}
	msg := we.Error()
	if !strings.Contains(msg, "append") || !strings.Contains(msg, "/tmp/x") {
		t.Fatalf("WriteError message %q lacks op or path", msg)
	}
}

func TestWriteFileAtomicReplacesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	for _, content := range []string{"first", "second longer content"} {
		if err := Default.WriteFileAtomic(path, []byte(content)); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1 (temp files must not leak)", len(entries))
	}
}

func TestAppendTruncateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	f, err := Default.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("garbage-tail")); err != nil {
		t.Fatal(err)
	}
	// Truncate back to the durable prefix, then keep appending: this is
	// the journal's torn-tail repair sequence.
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "one\ntwo\n" {
		t.Fatalf("journal holds %q, want %q", got, "one\ntwo\n")
	}
}

func TestWriteFailureCountsOnGlobalCounter(t *testing.T) {
	before := obs.IOWriteFailures().Value()
	err := Default.WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	var we *WriteError
	if !errors.As(err, &we) {
		t.Fatalf("error %T is not a *WriteError", err)
	}
	if obs.IOWriteFailures().Value() <= before {
		t.Fatal("failed write did not increment fcdpm_io_write_failures_total")
	}
}
