// Package vfs is the filesystem seam under every durable writer in the
// repo — the dispatcher WAL, the worker result spool, and the result
// cache's disk tier. Production code runs on OS (the real filesystem,
// with the fsync+atomic-rename discipline the runner journal
// established); the chaos harness substitutes a fault-injecting
// implementation to prove those writers degrade gracefully under
// ENOSPC, failed fsync, torn appends, and bit-rot.
//
// The interface is deliberately high-level: WriteFileAtomic is one
// crash-safe publication, OpenAppend/Append is one durable journal
// record. Faults inject at exactly the granularity the callers reason
// about, and the real implementation owns the temp-file/fsync/rename
// choreography in a single place.
package vfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"fcdpm/internal/obs"
)

// ErrDiskFull marks a write failure caused by space exhaustion (ENOSPC
// or a quota). Callers branch on it with IsDiskFull to degrade
// gracefully — the cache drops to memory-only, the dispatcher fences
// admissions, workers shed leases — instead of retrying a write that
// cannot succeed.
var ErrDiskFull = errors.New("vfs: disk full")

// IsDiskFull reports whether err is a space-exhaustion failure: either
// the typed ErrDiskFull (chaos injection) or a real ENOSPC/EDQUOT from
// the operating system.
func IsDiskFull(err error) bool {
	return errors.Is(err, ErrDiskFull) ||
		errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// WriteError is the typed failure of a durable write: which operation,
// which path, and the underlying cause (which may be ErrDiskFull or an
// OS errno — IsDiskFull sees through the wrapper).
type WriteError struct {
	Op   string // "write-atomic" | "append" | "remove" | "mkdir"
	Path string
	Err  error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("vfs: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }

// fail wraps a write failure and counts it on the process-global
// fcdpm_io_write_failures_total counter.
func fail(op, path string, err error) error {
	obs.IOWriteFailures().Inc()
	return &WriteError{Op: op, Path: path, Err: err}
}

// AppendFile is one open append-only journal handle. Append writes one
// record and makes it durable (write + fsync) before returning; a
// non-nil error means the record may be absent or torn on disk and the
// caller must not treat the transition as durable. Truncate cuts the
// file back to size — the repair step a journal runs after a failed
// Append, so a torn partial record can never fuse with the next
// successful one into a single unparseable line.
type AppendFile interface {
	Append(b []byte) error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem surface the durable writers run on.
type FS interface {
	// ReadFile returns the file's contents.
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic publishes data at path crash-safely: temp file,
	// fsync, rename, best-effort directory sync.
	WriteFileAtomic(path string, data []byte) error
	// OpenAppend opens (creating if needed) an append-only handle.
	OpenAppend(path string) (AppendFile, error)
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates the directory and parents.
	MkdirAll(path string) error
	// ReadDir lists the names of path's regular entries, sorted.
	ReadDir(path string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

// Default is the implementation production code runs on.
var Default FS = OS{}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFileAtomic writes data through a temp file, fsync, and rename,
// then best-effort syncs the directory — a crash at any instant leaves
// either the old file or the complete new one, never a torn mix.
func (OS) WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return fail("write-atomic", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fail("write-atomic", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fail("write-atomic", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fail("write-atomic", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail("write-atomic", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: persist the rename itself
		d.Close()
	}
	return nil
}

func (OS) OpenAppend(path string) (AppendFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fail("append", path, err)
	}
	return &osAppend{path: path, f: f}, nil
}

func (OS) Remove(path string) error {
	if err := os.Remove(path); err != nil {
		return fail("remove", path, err)
	}
	return nil
}

func (OS) MkdirAll(path string) error {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fail("mkdir", path, err)
	}
	return nil
}

func (OS) ReadDir(path string) ([]string, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// osAppend is the real append handle: every Append is write + fsync.
type osAppend struct {
	path string
	f    *os.File
}

func (a *osAppend) Append(b []byte) error {
	if _, err := a.f.Write(b); err != nil {
		return fail("append", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fail("append", a.path, err)
	}
	return nil
}

func (a *osAppend) Truncate(size int64) error {
	if err := a.f.Truncate(size); err != nil {
		return fail("truncate", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		return fail("truncate", a.path, err)
	}
	return nil
}

func (a *osAppend) Close() error { return a.f.Close() }
