package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fcdpm/internal/client"
	"fcdpm/internal/config"
	"fcdpm/internal/runreport"
	"fcdpm/internal/sim"
	"fcdpm/internal/version"
)

// scenarioJSON builds a small, fast, deterministic scenario spec.
func scenarioJSON(name string, seed int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(
		`{"name":%q,"trace":{"kind":"synthetic","seed":%d,"duration":60},"policy":{"kind":"fcdpm"}}`,
		name, seed))
}

// renderLocally computes the row the fabric must produce for spec —
// the byte-identity oracle every test compares against.
func renderLocally(t *testing.T, spec json.RawMessage) []byte {
	t.Helper()
	scen, err := config.LoadValidated(bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	key, err := scen.CacheKey(version.Engine())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := scen.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := runreport.Render(scen.Name, key, version.Engine(), res)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newTestDispatcher(t *testing.T, opts Options) (*Dispatcher, *httptest.Server) {
	t.Helper()
	opts.Logf = t.Logf
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() { ts.Close(); d.Close() })
	return d, ts
}

// startTestWorker runs a fast-polling worker until the returned stop
// function is called (which waits for the drain).
func startTestWorker(t *testing.T, name, dispatcher string, workers int) (*Worker, func()) {
	t.Helper()
	w, err := NewWorker(WorkerOptions{
		Dispatcher: dispatcher, Name: name, Workers: workers,
		PollMin: 2 * time.Millisecond, PollMax: 20 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		})
	}
	t.Cleanup(stop)
	return w, stop
}

// TestSweepEndToEnd drives the full fabric in-process: submit through
// the client, execute on a real worker, and check the returned rows
// byte-for-byte against local simulation. A resubmission must resolve
// entirely from the cache without touching the worker again.
func TestSweepEndToEnd(t *testing.T) {
	_, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second})
	w, _ := startTestWorker(t, "w1", ts.URL, 2)

	specs := []json.RawMessage{
		scenarioJSON("e2e-a", 1), scenarioJSON("e2e-b", 2), scenarioJSON("e2e-c", 3),
	}
	rows := filepath.Join(t.TempDir(), "rows.ndjson")
	var events bytes.Buffer
	err := SubmitSweep(context.Background(), ClientOptions{
		Base: ts.URL, Rows: rows, Events: &events, Logf: t.Logf,
	}, SweepRequest{Name: "e2e", Scenarios: specs})
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}

	got, err := os.ReadFile(rows)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, spec := range specs {
		want.Write(renderLocally(t, spec))
		want.WriteByte('\n')
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("rows differ from local simulation\ngot:  %s\nwant: %s", got, want.Bytes())
	}
	if ev := events.String(); !strings.Contains(ev, `"kind":"resolved"`) {
		t.Fatalf("event stream never resolved:\n%s", ev)
	}
	if n := w.metrics.executed.Value(); n != 3 {
		t.Fatalf("worker executed %v shards, want 3", n)
	}

	// Idempotent re-dispatch: same specs, zero new simulations.
	rows2 := filepath.Join(t.TempDir(), "rows2.ndjson")
	err = SubmitSweep(context.Background(), ClientOptions{Base: ts.URL, Rows: rows2},
		SweepRequest{Name: "e2e-again", Scenarios: specs})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	got2, err := os.ReadFile(rows2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("cached resubmission rows differ from the original")
	}
	if n := w.metrics.executed.Value(); n != 3 {
		t.Fatalf("resubmission re-simulated: executed %v, want 3", n)
	}
}

// TestSweepFailedShard: a shard whose simulation cannot even build
// resolves the sweep as failed and the client reports it.
func TestSweepFailedShard(t *testing.T) {
	_, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second})
	startTestWorker(t, "w1", ts.URL, 1)

	// Valid spec, impossible simulation: a file trace pointing nowhere
	// passes validation but fails at Build time on the worker.
	bad := json.RawMessage(`{"name":"bad","trace":{"kind":"file","file":"/nonexistent/trace.csv"},"policy":{"kind":"fcdpm"}}`)
	err := SubmitSweep(context.Background(), ClientOptions{Base: ts.URL},
		SweepRequest{Name: "failing", Scenarios: []json.RawMessage{scenarioJSON("ok", 1), bad}})
	if err == nil || !strings.Contains(err.Error(), "1 of 2 shards failed") {
		t.Fatalf("err = %v, want 1 of 2 shards failed", err)
	}
}

// TestLeaseExpiryReclaim covers the chaos invariant at the protocol
// level: a worker that leases a shard and dies silent loses the lease;
// the shard re-enters the queue under a fresh epoch; the dead holder's
// late failure verdict is ignored, its late success is accepted; and
// the final result set holds exactly one row for the RunID.
func TestLeaseExpiryReclaim(t *testing.T) {
	clock := time.Now()
	var mu sync.Mutex
	opts := Options{LeaseTTL: time.Second, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	d, ts := newTestDispatcher(t, opts)

	spec := scenarioJSON("reclaim-me", 7)
	var acc SweepAccepted
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps",
		SweepRequest{Name: "chaos", Scenarios: []json.RawMessage{spec}}, &acc); err != nil {
		t.Fatal(err)
	}

	lease := func(worker string) LeaseResponse {
		var resp LeaseResponse
		if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/lease",
			LeaseRequest{Worker: worker, Engine: version.Engine(), Max: 1}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	ghost := lease("ghost")
	if len(ghost.Shards) != 1 {
		t.Fatalf("ghost leased %d shards, want 1", len(ghost.Shards))
	}

	// The ghost never heartbeats; its lease expires and the shard is
	// reclaimed under a fresh epoch.
	advance(2 * time.Second)
	if n := d.ReclaimExpired(); n != 1 {
		t.Fatalf("reclaimExpired = %d, want 1", n)
	}
	if v := d.metrics.expired.Value(); v != 1 {
		t.Fatalf("lease_expirations_total = %v, want 1", v)
	}
	if v := d.metrics.reclaimed.Value(); v != 1 {
		t.Fatalf("shards_reclaimed_total = %v, want 1", v)
	}

	// The ghost's late FAILURE verdict must not fail the shard: the
	// lease was reclaimed, the verdict belongs to the next holder.
	var cresp CompleteResponse
	err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/complete", CompleteRequest{
		Worker: "ghost", Lease: ghost.Shards[0].Lease, RunID: ghost.Shards[0].RunID,
		Key: ghost.Shards[0].Key, OK: false, Error: "killed mid-shard",
	}, &cresp)
	if err != nil || !cresp.Duplicate {
		t.Fatalf("stale failure: err=%v duplicate=%v, want ignored as duplicate", err, cresp.Duplicate)
	}

	// A second worker picks the shard up under the new epoch and
	// completes it for real.
	second := lease("w2")
	if len(second.Shards) != 1 {
		t.Fatalf("w2 leased %d shards, want 1", len(second.Shards))
	}
	if second.Shards[0].Lease == ghost.Shards[0].Lease {
		t.Fatal("reclaimed shard re-leased under the same epoch")
	}
	if second.Shards[0].RunID != ghost.Shards[0].RunID {
		t.Fatal("re-dispatch changed the shard's RunID")
	}
	body := renderLocally(t, spec)
	err = client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/complete", CompleteRequest{
		Worker: "w2", Lease: second.Shards[0].Lease, RunID: second.Shards[0].RunID,
		Key: second.Shards[0].Key, OK: true, Body: body,
	}, &cresp)
	if err != nil || cresp.Duplicate {
		t.Fatalf("real completion: err=%v duplicate=%v", err, cresp.Duplicate)
	}

	// The ghost resurfaces and pushes its own success (the at-least-once
	// path): deduplicated, not double-counted.
	err = client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/complete", CompleteRequest{
		Worker: "ghost", Lease: ghost.Shards[0].Lease, RunID: ghost.Shards[0].RunID,
		Key: ghost.Shards[0].Key, OK: true, Body: body,
	}, &cresp)
	if err != nil || !cresp.Duplicate {
		t.Fatalf("late duplicate success: err=%v duplicate=%v, want duplicate", err, cresp.Duplicate)
	}
	if v := d.metrics.duplicates.Value(); v != 2 {
		t.Fatalf("duplicate_completions_total = %v, want 2", v)
	}

	var st SweepStatus
	if err := client.GetJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps/"+acc.ID, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("status = %+v, want done with 1 completed", st)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + acc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows bytes.Buffer
	rows.ReadFrom(resp.Body)
	if want := string(body) + "\n"; rows.String() != want {
		t.Fatalf("results = %q, want exactly one row %q", rows.String(), want)
	}
}

// TestStaleSuccessAccepted: a reclaimed worker's finished result is
// still a result — it completes the shard before the new holder even
// reports, and the new holder's push deduplicates.
func TestStaleSuccessAccepted(t *testing.T) {
	clock := time.Now()
	var mu sync.Mutex
	d, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}})

	spec := scenarioJSON("stale-win", 9)
	var acc SweepAccepted
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps",
		SweepRequest{Scenarios: []json.RawMessage{spec}}, &acc); err != nil {
		t.Fatal(err)
	}
	var first LeaseResponse
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/lease",
		LeaseRequest{Worker: "slow", Engine: version.Engine(), Max: 1}, &first); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	clock = clock.Add(2 * time.Second)
	mu.Unlock()
	if n := d.ReclaimExpired(); n != 1 {
		t.Fatalf("reclaimExpired = %d, want 1", n)
	}

	// The slow worker finishes anyway and delivers under its stale lease.
	body := renderLocally(t, spec)
	var cresp CompleteResponse
	err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/complete", CompleteRequest{
		Worker: "slow", Lease: first.Shards[0].Lease, RunID: first.Shards[0].RunID,
		Key: first.Shards[0].Key, OK: true, Body: body,
	}, &cresp)
	if err != nil || cresp.Duplicate {
		t.Fatalf("stale success: err=%v duplicate=%v, want accepted", err, cresp.Duplicate)
	}
	var st SweepStatus
	if err := client.GetJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps/"+acc.ID, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" || st.Completed != 1 {
		t.Fatalf("status = %+v, want done", st)
	}
}

// TestKillAndResumeSweep is the satellite-5 regression: a dispatcher
// killed mid-sweep and restarted on the same state dir resumes with the
// cache-hit shards still resolved, re-simulates nothing it already has,
// and serves rows byte-identical to a local batch of the same specs.
func TestKillAndResumeSweep(t *testing.T) {
	state := t.TempDir()
	specs := []json.RawMessage{
		scenarioJSON("resume-a", 11), scenarioJSON("resume-b", 12),
		scenarioJSON("resume-c", 13), scenarioJSON("resume-d", 14),
	}

	// Phase 1: complete half the shards so their bodies are in the disk
	// cache, then stop everything.
	d1, ts1 := newTestDispatcher(t, Options{StateDir: state, LeaseTTL: time.Second})
	w1, stop1 := startTestWorker(t, "w1", ts1.URL, 2)
	err := SubmitSweep(context.Background(), ClientOptions{Base: ts1.URL},
		SweepRequest{Name: "warmup", Scenarios: specs[:2]})
	if err != nil {
		t.Fatalf("warmup sweep: %v", err)
	}
	if n := w1.metrics.executed.Value(); n != 2 {
		t.Fatalf("warmup executed %v, want 2", n)
	}
	stop1()

	// Phase 2: submit the full sweep with no worker running — the two
	// warm shards resolve from cache instantly, two stay queued — then
	// kill the dispatcher mid-sweep.
	var acc SweepAccepted
	if err := client.PostJSON(context.Background(), ts1.Client(), ts1.URL+"/v1/sweeps",
		SweepRequest{Name: "resume", Scenarios: specs}, &acc); err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := client.GetJSON(context.Background(), ts1.Client(), ts1.URL+"/v1/sweeps/"+acc.ID, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cached != 2 || st.Remaining != 2 {
		t.Fatalf("pre-kill status = %+v, want 2 cached / 2 remaining", st)
	}
	ts1.Close()
	d1.Close()

	// Phase 3: restart on the same state dir. The sweep must come back
	// mid-flight with its cache hits intact.
	d2, ts2 := newTestDispatcher(t, Options{StateDir: state, LeaseTTL: time.Second})
	if err := client.GetJSON(context.Background(), ts2.Client(), ts2.URL+"/v1/sweeps/"+acc.ID, &st); err != nil {
		t.Fatalf("sweep lost across restart: %v", err)
	}
	if st.Status != "running" || st.Completed != 2 || st.Cached != 2 || st.Remaining != 2 {
		t.Fatalf("post-restart status = %+v, want running with 2 cached completed", st)
	}
	if v := d2.metrics.reclaimed.Value(); v != 2 {
		t.Fatalf("restart requeued %v shards into reclaimed metric, want 2", v)
	}

	// A fresh worker finishes only the two cold shards.
	w2, stop2 := startTestWorker(t, "w2", ts2.URL, 2)
	waitSweepDone(t, ts2, acc.ID, 30*time.Second)
	stop2()
	if n := w2.metrics.executed.Value(); n != 2 {
		t.Fatalf("resumed worker executed %v shards, want 2 (zero re-simulation)", n)
	}

	// Rows: submission order, byte-identical to local simulation of the
	// same specs (which is what `fcdpm batch -rows` renders).
	resp, err := ts2.Client().Get(ts2.URL + "/v1/sweeps/" + acc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	var want bytes.Buffer
	for _, spec := range specs {
		want.Write(renderLocally(t, spec))
		want.WriteByte('\n')
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed rows differ from local batch\ngot:  %s\nwant: %s", got.Bytes(), want.Bytes())
	}
}

func waitSweepDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st SweepStatus
		if err := client.GetJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps/"+id, &st); err != nil {
			t.Fatal(err)
		}
		if st.Done() {
			if st.Failed > 0 {
				t.Fatalf("sweep failed: %+v", st)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not resolve within %s", id, timeout)
}

// TestResultsConflictWhileRunning: /results answers 409 until the sweep
// resolves, so a client can never read a partial row set.
func TestResultsConflictWhileRunning(t *testing.T) {
	_, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second})
	var acc SweepAccepted
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps",
		SweepRequest{Scenarios: []json.RawMessage{scenarioJSON("pending", 3)}}, &acc); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + acc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results while running = %d, want 409", resp.StatusCode)
	}
}

// TestEngineMismatchRejected: a worker built from different source can
// never taint a sweep — its lease requests bounce with 409.
func TestEngineMismatchRejected(t *testing.T) {
	_, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second})
	var resp LeaseResponse
	err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/lease",
		LeaseRequest{Worker: "other", Engine: "fcdpm-other-build", Max: 1}, &resp)
	var he *client.Error
	if err == nil || !strings.Contains(err.Error(), "engine mismatch") {
		t.Fatalf("err = %v, want engine mismatch", err)
	}
	if !errors.As(err, &he) || he.Code != http.StatusConflict {
		t.Fatalf("err = %v, want 409", err)
	}
}

// TestDrainingRefusesWithRetryAfter: a draining dispatcher sheds
// submissions and leases with 503 + Retry-After, which the worker and
// client backoffs honor.
func TestDrainingRefusesWithRetryAfter(t *testing.T) {
	d, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second})
	d.draining.Store(true)
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"scenarios":[{"policy":{"kind":"fcdpm"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
}

// TestWorkerSpoolDrain: a result the dispatcher cannot accept lands in
// the disk spool and is redelivered — exactly once — when the
// dispatcher answers again.
func TestWorkerSpoolDrain(t *testing.T) {
	var accept bool
	var gotMu sync.Mutex
	var got []CompleteRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		gotMu.Lock()
		defer gotMu.Unlock()
		if !accept {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		var req CompleteRequest
		json.NewDecoder(r.Body).Decode(&req)
		got = append(got, req)
		json.NewEncoder(w).Encode(CompleteResponse{})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spool := t.TempDir()
	w, err := NewWorker(WorkerOptions{
		Dispatcher: ts.URL, Name: "sp", Workers: 1, SpoolDir: spool,
		PollMin: time.Millisecond, PollMax: 2 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.poolStop()

	req := CompleteRequest{Worker: "sp", Lease: "swp-000001/0/1", RunID: "shard/key=k", Key: "k",
		OK: true, Body: json.RawMessage(`{"x":1}`)}
	if w.pushComplete(context.Background(), req, 2) {
		t.Fatal("pushComplete succeeded against a down dispatcher")
	}
	w.spool(req)
	entries, _ := os.ReadDir(spool)
	if len(entries) != 1 {
		t.Fatalf("spool holds %d files, want 1", len(entries))
	}

	// Dispatcher still down: the drain keeps the file.
	w.drainSpool(context.Background())
	if entries, _ = os.ReadDir(spool); len(entries) != 1 {
		t.Fatalf("drain against a down dispatcher left %d files, want 1", len(entries))
	}

	gotMu.Lock()
	accept = true
	gotMu.Unlock()
	w.drainSpool(context.Background())
	if entries, _ = os.ReadDir(spool); len(entries) != 0 {
		t.Fatalf("drained spool still holds %d files", len(entries))
	}
	gotMu.Lock()
	defer gotMu.Unlock()
	if len(got) != 1 || got[0].RunID != "shard/key=k" || !got[0].OK {
		t.Fatalf("dispatcher received %+v, want the spooled result once", got)
	}
	if v := w.metrics.drained.Value(); v != 1 {
		t.Fatalf("spool_drained_total = %v, want 1", v)
	}
}

// TestWorkerLostLeaseCancelsRun: when a heartbeat reports a lease lost,
// the worker cancels that execution and never pushes its verdict.
func TestWorkerLostLeaseCancelsRun(t *testing.T) {
	clock := time.Now()
	var mu sync.Mutex
	d, ts := newTestDispatcher(t, Options{LeaseTTL: time.Second, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}})
	w, err := NewWorker(WorkerOptions{
		Dispatcher: ts.URL, Name: "loser", Workers: 1,
		PollMin: time.Millisecond, PollMax: 2 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.poolStop()

	var acc SweepAccepted
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/sweeps",
		SweepRequest{Scenarios: []json.RawMessage{scenarioJSON("lost", 21)}}, &acc); err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := client.PostJSON(context.Background(), ts.Client(), ts.URL+"/v1/lease",
		LeaseRequest{Worker: "loser", Engine: version.Engine(), Max: 1}, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Shards) != 1 {
		t.Fatalf("leased %d shards, want 1", len(lr.Shards))
	}
	sh := lr.Shards[0]
	act := &activeShard{shard: sh}
	w.mu.Lock()
	w.active[sh.Lease] = act
	act.lost = true // what heartbeatLoop does on a Lost report
	w.mu.Unlock()

	w.deliveries.Add(1)
	w.deliver(act, nil, context.Canceled)
	if v := w.metrics.pushed.Value(); v != 0 {
		t.Fatalf("lost lease still pushed %v completions", v)
	}
	// The shard is untouched server-side: reclaim hands it to the next
	// worker rather than recording the canceled run's failure.
	mu.Lock()
	clock = clock.Add(2 * time.Second)
	mu.Unlock()
	if n := d.ReclaimExpired(); n != 1 {
		t.Fatalf("reclaimExpired = %d, want 1", n)
	}
}
