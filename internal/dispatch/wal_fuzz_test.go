package dispatch

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fcdpm/internal/version"
	"fcdpm/internal/vfs"
)

// FuzzWALReplay feeds arbitrary bytes to the journal reader and the
// full dispatcher replay path. The contract under any corruption —
// torn tails, interleaved garbage, binary noise — is: never panic,
// either start cleanly or reject with an error, and keep the journal
// appendable afterwards (the torn-tail repair must make the next
// append land on a parseable boundary).
func FuzzWALReplay(f *testing.F) {
	sweepLine := func() []byte {
		b, _ := json.Marshal(walSweep{Op: "sweep", ID: "swp-000001", Name: "s",
			Engine: version.Engine(), Shards: []shardDoc{{
				Name: "a", RunID: ShardRunID("k"), Key: "k",
				Spec: json.RawMessage(`{"name":"a"}`),
			}}})
		return append(b, '\n')
	}
	shardLine := []byte(`{"op":"shard","sweep":"swp-000001","index":0,"state":"failed","error":"x"}` + "\n")
	genLine := []byte(`{"op":"gen","gen":3}` + "\n")

	f.Add([]byte{})
	f.Add(sweepLine())
	f.Add(append(sweepLine(), shardLine...))
	f.Add(append(append(genLine, sweepLine()...), []byte(`{"op":"sh`)...)) // torn tail
	f.Add([]byte("\x00\xff\xfe garbage\n{not json}\n"))
	f.Add([]byte(`{"op":"sweep","id":"swp-000001","engine":"other-engine","shards":[]}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "dispatch.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Layer 1: the reader. Every record it accepts must be valid JSON,
		// and the handle must keep working: one append, one reopen, and
		// the appended record is the recovered tail.
		w, records, err := openWAL(vfs.Default, path)
		if err != nil {
			t.Skip("unreadable journal is a clean rejection")
		}
		for i, rec := range records {
			if !json.Valid(rec) {
				t.Fatalf("record %d replayed as invalid JSON: %q", i, rec)
			}
		}
		if err := w.append(walGen{Op: "gen", Gen: 99}); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		w.close()
		w2, records2, err := openWAL(vfs.Default, path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		w2.close()
		if len(records2) != len(records)+1 {
			t.Fatalf("reopen recovered %d records, want %d (append must land on a clean boundary)",
				len(records2), len(records)+1)
		}

		// Layer 2: the dispatcher. Reset to the fuzz bytes and replay for
		// real — either a working dispatcher or a clean error.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := New(Options{StateDir: dir})
		if err == nil {
			d.Close()
		}
	})
}
