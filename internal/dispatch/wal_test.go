package dispatch

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fcdpm/internal/vfs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "dispatch.wal")
}

func TestWALAppendReopen(t *testing.T) {
	path := walPath(t)
	w, recs, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	if err := w.append(walSweep{Op: "sweep", ID: "swp-000001", Engine: "e"}); err != nil {
		t.Fatal(err)
	}
	if err := w.append(walShard{Op: "shard", Sweep: "swp-000001", Index: 2, State: shardCompleted}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	var ws walSweep
	if err := json.Unmarshal(recs[0], &ws); err != nil || ws.ID != "swp-000001" {
		t.Fatalf("first record = %s (err %v)", recs[0], err)
	}
	var sh walShard
	if err := json.Unmarshal(recs[1], &sh); err != nil || sh.Index != 2 || sh.State != shardCompleted {
		t.Fatalf("second record = %s (err %v)", recs[1], err)
	}
}

// A torn tail — the record being written when the process died — must
// not poison the journal: replay stops at the tear, and appends resume.
func TestWALTornTail(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walSweep{Op: "sweep", ID: "swp-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"shard","sweep":"swp-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past a torn tail, want 1", len(recs))
	}
	if err := w2.append(walShard{Op: "shard", Sweep: "swp-000001", Index: 0, State: shardFailed}); err != nil {
		t.Fatal(err)
	}
	w2.close()

	// The post-tear append first truncates the torn bytes (the repair
	// step), so it lands whole: replay sees both the original record and
	// the new one. Without the repair, the tear would fuse with the new
	// line into one unparseable record and take it down too.
	w3, recs, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after repaired append, want 2", len(recs))
	}
	if err := w3.compact([]any{walSweep{Op: "sweep", ID: "swp-000001"}}); err != nil {
		t.Fatal(err)
	}
	if err := w3.append(walShard{Op: "shard", Sweep: "swp-000001", Index: 0, State: shardCompleted}); err != nil {
		t.Fatal(err)
	}
	w3.close()
	_, recs, err = openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after compaction replayed %d records, want 2", len(recs))
	}
}

func TestWALCompact(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.append(walShard{Op: "shard", Sweep: "s", Index: i, State: shardQueued}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.compact([]any{walSweep{Op: "sweep", ID: "s", Shards: []shardDoc{{Name: "a"}}}}); err != nil {
		t.Fatal(err)
	}
	w.close()
	_, recs, err := openWAL(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("compacted WAL replayed %d records, want 1", len(recs))
	}
}

// TestWALCompactFailureKeepsJournal: when the compaction rewrite fails
// (disk full at startup), the original journal must stay intact and the
// handle must keep appending to it — compaction failure degrades to a
// bigger file, never a dead dispatcher.
func TestWALCompactFailureKeepsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dispatch.wal")
	fs := newCountdownFS()
	w, _, err := openWAL(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walGen{Op: "gen", Gen: 1}); err != nil {
		t.Fatal(err)
	}

	fs.okLeft.Store(0) // the atomic rewrite will fail
	if err := w.compact([]any{walGen{Op: "gen", Gen: 2}}); err == nil {
		t.Fatal("compact succeeded with a full disk")
	}
	fs.okLeft.Store(-1)

	// The handle survived: append and reopen recover everything.
	if err := w.append(walGen{Op: "gen", Gen: 3}); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	w.close()
	_, records, err := openWAL(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("replayed %d records, want 2 (original + post-compact append)", len(records))
	}
}
