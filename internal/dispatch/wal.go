package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"fcdpm/internal/vfs"
)

// The dispatcher's write-ahead log is an append-only JSONL file, one
// record per line, fsynced per append. Two record kinds exist:
//
//   - op=sweep: a whole accepted sweep — name, engine tag, and every
//     shard's durable identity (name, run ID, content address, canonical
//     spec). Written once, before any shard is dispatched.
//   - op=shard: one shard's terminal transition (completed or failed).
//     Non-terminal states (queued, leased, executing) are deliberately
//     not journaled: leases are ephemeral by design, so on restart every
//     non-terminal shard reverts to queued and is re-dispatched — the
//     idempotent re-dispatch path makes that safe.
//
// Replay tolerates a torn tail (a crash mid-append leaves at most one
// partial line, which is ignored), and startup compacts the log by
// folding terminal states into each sweep record and atomically
// rewriting the file.
//
// Compaction also bumps a generation counter (op=gen). Lease epochs of
// requeued shards start at the generation's base instead of zero, so a
// lease token granted before a crash can never collide with one granted
// after the restart — without it, a pre-crash holder's stale failure
// verdict could be mistaken for the new holder's and fail a shard that
// the new holder would have completed.

// walSweep is the op=sweep record.
type walSweep struct {
	Op     string     `json:"op"`
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	Engine string     `json:"engine"`
	Shards []shardDoc `json:"shards"`
}

// walGen is the op=gen record: how many times this journal has been
// replayed. Written by compaction at every startup.
type walGen struct {
	Op  string `json:"op"`
	Gen int    `json:"gen"`
}

// shardDoc is one shard's durable identity. The State/Cached/Err fields
// are written only by compaction, folding the shard's terminal
// transition into the sweep record it belongs to.
type shardDoc struct {
	Name   string          `json:"name"`
	RunID  string          `json:"runId"`
	Key    string          `json:"key"`
	Spec   json.RawMessage `json:"spec"`
	State  string          `json:"state,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Err    string          `json:"error,omitempty"`
}

// walShard is the op=shard record: one terminal transition.
type walShard struct {
	Op     string `json:"op"`
	Sweep  string `json:"sweep"`
	Index  int    `json:"index"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

// wal is the append handle. Appends are serialized and fsynced; the
// file never shrinks except through compact's atomic rewrite and the
// torn-tail repair truncate.
type wal struct {
	fs   vfs.FS
	path string
	f    vfs.AppendFile
	// good is the byte length of the durable prefix — every record up to
	// good is whole and parseable. dirty marks bytes possibly present
	// beyond good (a torn tail from a crash, or a failed append that may
	// have written part of its line); the next append truncates back to
	// good first, so a torn fragment can never fuse with a later record
	// into one unparseable line that would take acked records down with
	// it at replay.
	good  int64
	dirty bool
}

// openWAL reads the journal at path (tolerating a torn tail), returning
// the decoded records and an open append handle. A missing file is an
// empty journal.
func openWAL(fs vfs.FS, path string) (*wal, []json.RawMessage, error) {
	var records []json.RawMessage
	b, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("dispatch: wal read: %w", err)
	}
	// Walk whole lines, tracking the durable-prefix length. The first
	// line that is incomplete (no newline) or unparseable is a torn tail
	// from a crash mid-append: nothing at or past it was ever acked.
	off := 0
	for off < len(b) {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(b[off : off+nl])
		if len(line) > 0 && !json.Valid(line) {
			break
		}
		if len(line) > 0 {
			records = append(records, json.RawMessage(bytes.Clone(line)))
		}
		off += nl + 1
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: wal open: %w", err)
	}
	return &wal{fs: fs, path: path, f: f, good: int64(off), dirty: off != len(b)}, records, nil
}

// append journals one record durably: repair any torn tail, marshal,
// write the line, fsync. The caller serializes appends (the dispatcher
// holds its state lock), which also guarantees WAL order matches
// state-transition order. A non-nil error (disk full, failed fsync,
// torn write) means the record must not be treated as durable;
// vfs.IsDiskFull classifies the cause.
func (w *wal) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: wal encode: %w", err)
	}
	if w.dirty {
		if err := w.f.Truncate(w.good); err != nil {
			return fmt.Errorf("dispatch: wal repair: %w", err)
		}
		w.dirty = false
	}
	line := append(b, '\n')
	if err := w.f.Append(line); err != nil {
		w.dirty = true // part of the line may be on disk
		return fmt.Errorf("dispatch: wal append: %w", err)
	}
	w.good += int64(len(line))
	return nil
}

// compact atomically replaces the journal with the given records (one
// generation record plus one folded sweep record per live sweep) and
// reopens the append handle.
func (w *wal) compact(records []any) error {
	var buf bytes.Buffer
	for _, v := range records {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("dispatch: wal encode: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("dispatch: wal close: %w", err)
	}
	werr := w.fs.WriteFileAtomic(w.path, buf.Bytes())
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return fmt.Errorf("dispatch: wal reopen: %w", err)
	}
	w.f = f
	if werr != nil {
		// The rewrite never replaced the file (atomic publication failed
		// before the rename), so the original journal — with its known
		// durable prefix — is intact and the reopened handle keeps
		// appending to it. Compaction failure degrades to a bigger file,
		// not a dead dispatcher.
		return fmt.Errorf("dispatch: wal compact: %w", werr)
	}
	w.good, w.dirty = int64(buf.Len()), false
	return nil
}

// close releases the append handle.
func (w *wal) close() error { return w.f.Close() }
