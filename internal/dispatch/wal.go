package dispatch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"fcdpm/internal/cache"
)

// The dispatcher's write-ahead log is an append-only JSONL file, one
// record per line, fsynced per append. Two record kinds exist:
//
//   - op=sweep: a whole accepted sweep — name, engine tag, and every
//     shard's durable identity (name, run ID, content address, canonical
//     spec). Written once, before any shard is dispatched.
//   - op=shard: one shard's terminal transition (completed or failed).
//     Non-terminal states (queued, leased, executing) are deliberately
//     not journaled: leases are ephemeral by design, so on restart every
//     non-terminal shard reverts to queued and is re-dispatched — the
//     idempotent re-dispatch path makes that safe.
//
// Replay tolerates a torn tail (a crash mid-append leaves at most one
// partial line, which is ignored), and startup compacts the log by
// folding terminal states into each sweep record and atomically
// rewriting the file.

// walSweep is the op=sweep record.
type walSweep struct {
	Op     string     `json:"op"`
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	Engine string     `json:"engine"`
	Shards []shardDoc `json:"shards"`
}

// shardDoc is one shard's durable identity. The State/Cached/Err fields
// are written only by compaction, folding the shard's terminal
// transition into the sweep record it belongs to.
type shardDoc struct {
	Name   string          `json:"name"`
	RunID  string          `json:"runId"`
	Key    string          `json:"key"`
	Spec   json.RawMessage `json:"spec"`
	State  string          `json:"state,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Err    string          `json:"error,omitempty"`
}

// walShard is the op=shard record: one terminal transition.
type walShard struct {
	Op     string `json:"op"`
	Sweep  string `json:"sweep"`
	Index  int    `json:"index"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

// wal is the append handle. Appends are serialized and fsynced; the
// file never shrinks except through compact's atomic rewrite.
type wal struct {
	path string
	f    *os.File
}

// openWAL reads the journal at path (tolerating a torn tail), returning
// the decoded records and an open append handle. A missing file is an
// empty journal.
func openWAL(path string) (*wal, []json.RawMessage, error) {
	var records []json.RawMessage
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("dispatch: wal read: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			// A torn tail from a crash mid-append: everything before it
			// was fsynced whole, so stop here and let compaction drop it.
			break
		}
		records = append(records, json.RawMessage(bytes.Clone(line)))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dispatch: wal scan: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: wal open: %w", err)
	}
	return &wal{path: path, f: f}, records, nil
}

// append journals one record durably: marshal, write the line, fsync.
// The caller serializes appends (the dispatcher holds its state lock),
// which also guarantees WAL order matches state-transition order.
func (w *wal) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dispatch: wal encode: %w", err)
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("dispatch: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dispatch: wal fsync: %w", err)
	}
	return nil
}

// compact atomically replaces the journal with the given records (one
// folded sweep record per live sweep) and reopens the append handle.
func (w *wal) compact(records []any) error {
	var buf bytes.Buffer
	for _, v := range records {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("dispatch: wal encode: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("dispatch: wal close: %w", err)
	}
	if err := cache.AtomicWriteFile(w.path, buf.Bytes()); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dispatch: wal reopen: %w", err)
	}
	w.f = f
	return nil
}

// close releases the append handle.
func (w *wal) close() error { return w.f.Close() }
