package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"fcdpm/internal/client"
	"fcdpm/internal/config"
	"fcdpm/internal/obs"
	"fcdpm/internal/runner"
	"fcdpm/internal/runreport"
	"fcdpm/internal/sim"
	"fcdpm/internal/version"
	"fcdpm/internal/vfs"
)

// Worker defaults.
const (
	// DefaultPollMin/Max bound the jittered exponential backoff between
	// lease polls (empty queue or unreachable dispatcher).
	DefaultPollMin = 200 * time.Millisecond
	DefaultPollMax = 5 * time.Second
	// completeAttempts bounds delivery retries before a result spools.
	completeAttempts = 5
)

// WorkerOptions tunes one worker daemon.
type WorkerOptions struct {
	// Dispatcher is the dispatcher's base URL (http://host:port).
	Dispatcher string
	// Name identifies this worker in leases and metrics; default
	// hostname-pid.
	Name string
	// Workers bounds concurrent shard executions (default GOMAXPROCS via
	// the pool) and the lease batch size.
	Workers int
	// RunTimeout is the per-shard simulation deadline; 0 means none.
	RunTimeout time.Duration
	// PollMin/PollMax bound the lease-poll backoff.
	PollMin, PollMax time.Duration
	// SpoolDir, when set, buffers results the dispatcher could not
	// receive; the spool drains on reconnect. Empty disables spooling —
	// an undeliverable result is dropped and the shard re-dispatches.
	SpoolDir string
	// SpoolShedPeriod is how long the worker stops taking new leases
	// after a disk-full spool write (default 5s): with nowhere durable to
	// put undeliverable results, more leases would only produce more work
	// to drop.
	SpoolShedPeriod time.Duration
	// Addr, when set, serves /metrics and /healthz for this worker.
	Addr string
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Clock paces heartbeats and backoff sleeps (tests, chaos trials);
	// nil means the wall clock. Lease-TTL skew tolerance is exercised by
	// handing the worker a clock that runs slow.
	Clock runner.Clock
	// FS is the filesystem under the result spool (chaos trials); nil
	// means the real one.
	FS vfs.FS
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	o.Dispatcher = strings.TrimRight(o.Dispatcher, "/")
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "workd"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.PollMin <= 0 {
		o.PollMin = DefaultPollMin
	}
	if o.PollMax <= 0 {
		o.PollMax = DefaultPollMax
	}
	if o.SpoolShedPeriod <= 0 {
		o.SpoolShedPeriod = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Clock == nil {
		o.Clock = runner.WallClock
	}
	if o.FS == nil {
		o.FS = vfs.Default
	}
	return o
}

// activeShard is one lease this worker holds: the shard, the cancel
// hook for its execution, and whether the dispatcher reclaimed it.
type activeShard struct {
	shard  Shard
	cancel context.CancelFunc
	lost   bool
}

// Worker polls the dispatcher for shards, executes them on a local
// runner.Pool, heartbeats its leases, and delivers results with
// at-least-once semantics: push with retries, spool to disk when the
// dispatcher is unreachable, drain the spool on reconnect.
type Worker struct {
	opts     WorkerOptions
	engine   string
	hc       *http.Client
	metrics  *workerMetrics
	pool     *runner.Pool[struct{}]
	poolStop context.CancelFunc

	mu     sync.Mutex
	active map[string]*activeShard
	ttl    time.Duration
	// shedUntil pauses leasing after a disk-full spool write: until this
	// instant the lease loop sleeps instead of polling.
	shedUntil time.Time

	// slotFree pulses when a lease releases, waking the lease loop.
	slotFree chan struct{}
	// deliveries tracks in-flight result pushes across shutdown.
	deliveries sync.WaitGroup
}

// NewWorker builds a worker daemon.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	opts = opts.withDefaults()
	if opts.Dispatcher == "" {
		return nil, errors.New("dispatch: worker needs a dispatcher URL")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	w := &Worker{
		opts:     opts,
		engine:   version.Engine(),
		hc:       opts.Client,
		metrics:  newWorkerMetrics(obs.NewRegistry()),
		active:   make(map[string]*activeShard),
		ttl:      DefaultLeaseTTL,
		slotFree: make(chan struct{}, 1),
	}
	poolCtx, cancel := context.WithCancel(context.Background())
	w.poolStop = cancel
	pool, err := runner.NewPool[struct{}](poolCtx, runner.Options{
		Workers: opts.Workers,
		Queue:   w.capacity(),
		Timeout: opts.RunTimeout,
		// The dispatcher owns retry and quarantine policy; a worker that
		// silently skipped shards via a local breaker would wedge leases.
		BreakerThreshold: -1,
		Metrics:          w.metrics.pool,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	w.pool = pool
	return w, nil
}

// capacity is how many leases this worker will hold at once: one per
// pool worker, so every leased shard is either executing or next in
// line.
func (w *Worker) capacity() int { return w.opts.Workers }

// Run polls, executes, and delivers until ctx is canceled, then drains:
// no new leases, in-flight shards finish and their results push (or
// spool). Returns nil on a clean drain; a fatal protocol error (engine
// mismatch) returns immediately.
func (w *Worker) Run(ctx context.Context) error {
	w.opts.Logf("fcdpm workd: %s polling %s (engine %s, %d slots)",
		w.opts.Name, w.opts.Dispatcher, w.engine, w.capacity())
	stopMetrics, err := w.serveMetrics()
	if err != nil {
		return err
	}
	defer stopMetrics()

	// Heartbeats outlive ctx: leases must stay renewed while the drain
	// finishes in-flight shards.
	hbCtx, hbStop := context.WithCancel(context.Background())
	defer hbStop()
	go w.heartbeatLoop(hbCtx)

	fatal := w.leaseLoop(ctx)

	// Graceful drain: finish in-flight simulations, then wait for their
	// deliveries (each pushes or spools).
	w.pool.Drain()
	w.deliveries.Wait()
	hbStop()
	w.poolStop()
	if fatal != nil {
		return fatal
	}
	w.opts.Logf("fcdpm workd: %s drained cleanly", w.opts.Name)
	return nil
}

// leaseLoop is the acquisition side: poll with jittered exponential
// backoff, honor Retry-After, drain the spool whenever the dispatcher
// answers, start every granted shard.
func (w *Worker) leaseLoop(ctx context.Context) error {
	netFails, idle := 0, 0
	for ctx.Err() == nil {
		w.mu.Lock()
		shed := w.shedUntil
		w.mu.Unlock()
		if wait := shed.Sub(w.opts.Clock.Now()); wait > 0 {
			// Spool-full shed: no durable place for undeliverable results,
			// so taking more work would only drop it.
			w.sleep(ctx, wait)
			continue
		}
		free := w.capacity() - w.held()
		if free <= 0 {
			w.waitSlot(ctx)
			continue
		}
		var resp LeaseResponse
		err := client.PostJSON(ctx, w.hc, w.opts.Dispatcher+"/v1/lease",
			LeaseRequest{Worker: w.opts.Name, Engine: w.engine, Max: free}, &resp)
		var he *client.Error
		switch {
		case err == nil:
			netFails = 0
			w.drainSpool(ctx)
			if len(resp.Shards) == 0 {
				idle++
				w.sleep(ctx, runner.BackoffDelay(w.opts.PollMin, w.opts.PollMax, w.opts.Name+"/idle", idle))
				continue
			}
			idle = 0
			w.metrics.leased.Add(float64(len(resp.Shards)))
			for _, sh := range resp.Shards {
				w.start(sh)
			}
		case errors.As(err, &he):
			netFails = 0
			if he.Code == http.StatusConflict {
				// Engine mismatch can never heal without a rebuild.
				return fmt.Errorf("dispatch: %s", he.Msg)
			}
			delay := he.RetryAfter
			if delay <= 0 {
				idle++
				delay = runner.BackoffDelay(w.opts.PollMin, w.opts.PollMax, w.opts.Name+"/http", idle)
			}
			w.sleep(ctx, delay)
		default:
			if ctx.Err() != nil {
				break
			}
			netFails++
			if netFails == 1 {
				w.opts.Logf("fcdpm workd: dispatcher unreachable, backing off: %v", err)
			}
			w.sleep(ctx, runner.BackoffDelay(w.opts.PollMin, w.opts.PollMax, w.opts.Name+"/net", netFails))
		}
	}
	return nil
}

func (w *Worker) held() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.active)
}

// sleep blocks on the injected clock; false means ctx canceled.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	return w.opts.Clock.Sleep(ctx, d) == nil
}

func (w *Worker) waitSlot(ctx context.Context) {
	t := time.NewTimer(w.opts.PollMax)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-w.slotFree:
	case <-t.C:
	}
}

// start registers the lease and submits the shard to the pool. The
// task ID is the lease token — unique even when two shards share a
// RunID (identical specs in one sweep).
func (w *Worker) start(sh Shard) {
	act := &activeShard{shard: sh}
	w.mu.Lock()
	w.active[sh.Lease] = act
	if ttl := time.Duration(sh.TTLMs) * time.Millisecond; ttl > 0 {
		w.ttl = ttl
	}
	w.mu.Unlock()
	err := w.pool.Submit(runner.Task[struct{}]{
		ID:       sh.Lease,
		Scenario: sh.Name,
		Run: func(ctx context.Context) (struct{}, error) {
			runCtx, cancel := context.WithCancel(ctx)
			defer cancel()
			w.mu.Lock()
			lost := act.lost
			act.cancel = cancel
			w.mu.Unlock()
			if lost {
				return struct{}{}, context.Canceled
			}
			body, err := w.execute(runCtx, sh)
			w.metrics.executed.Inc()
			w.deliveries.Add(1)
			go w.deliver(act, body, err)
			return struct{}{}, err
		},
	})
	if err != nil {
		// Pool closed under us (shutdown raced a grant): forget the
		// lease; it expires and the shard re-dispatches.
		w.release(act)
	}
}

// execute builds and runs one shard's simulation, rendering the stable
// report body that every serving surface agrees on.
func (w *Worker) execute(ctx context.Context, sh Shard) ([]byte, error) {
	spec, err := config.LoadValidated(bytes.NewReader(sh.Spec))
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sh.RunID, err)
	}
	cfg, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sh.RunID, err)
	}
	cfg.Metrics = w.metrics.sim
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return runreport.Render(sh.Name, sh.Key, w.engine, res)
}

// deliver pushes one outcome with at-least-once semantics: bounded
// retries honoring Retry-After, then the disk spool. Runs outside the
// pool so a slow dispatcher never blocks a simulation slot; the lease
// is held (and heartbeated) until the result is safe somewhere.
func (w *Worker) deliver(act *activeShard, body []byte, execErr error) {
	defer w.deliveries.Done()
	defer w.release(act)
	w.mu.Lock()
	lost := act.lost
	w.mu.Unlock()
	if lost {
		// Reclaimed: a failure verdict is no longer ours to give, and a
		// success from a canceled run has no body worth pushing.
		return
	}
	req := CompleteRequest{
		Worker: w.opts.Name, Lease: act.shard.Lease,
		RunID: act.shard.RunID, Key: act.shard.Key,
		OK: execErr == nil, Body: body,
	}
	if execErr != nil {
		req.Error = execErr.Error()
	}
	if w.pushComplete(context.Background(), req, completeAttempts) {
		return
	}
	w.spool(req)
}

// pushComplete attempts delivery up to attempts times. True means the
// dispatcher answered (accepted, duplicate, or permanently rejected);
// false means it stayed unreachable.
func (w *Worker) pushComplete(ctx context.Context, req CompleteRequest, attempts int) bool {
	for attempt := 1; ; attempt++ {
		var resp CompleteResponse
		err := client.PostJSON(ctx, w.hc, w.opts.Dispatcher+"/v1/complete", req, &resp)
		if err == nil {
			w.metrics.pushed.Inc()
			if resp.Duplicate {
				w.opts.Logf("fcdpm workd: %s was already complete (deduplicated)", req.RunID)
			}
			return true
		}
		var he *client.Error
		if errors.As(err, &he) && he.Code/100 == 4 {
			// Permanent rejection (stale sweep, malformed): nothing to
			// retry, nothing to spool.
			w.opts.Logf("fcdpm workd: completion for %s rejected: %v", req.RunID, err)
			return true
		}
		w.metrics.pushErrs.Inc()
		if attempt >= attempts {
			return false
		}
		delay := runner.BackoffDelay(w.opts.PollMin, w.opts.PollMax, req.Lease, attempt)
		if errors.As(err, &he) && he.RetryAfter > delay {
			delay = he.RetryAfter
		}
		if !w.sleep(ctx, delay) {
			return false
		}
	}
}

// release forgets a lease and wakes the lease loop.
func (w *Worker) release(act *activeShard) {
	w.mu.Lock()
	delete(w.active, act.shard.Lease)
	w.mu.Unlock()
	select {
	case w.slotFree <- struct{}{}:
	default:
	}
}

// heartbeatLoop renews held leases a few times per TTL. Leases the
// dispatcher reports lost are canceled locally — the shard was
// reclaimed and re-dispatched, so finishing it here is wasted work.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		tick := w.ttl / 3
		w.mu.Unlock()
		if tick < 100*time.Millisecond {
			tick = 100 * time.Millisecond
		}
		if !w.sleep(ctx, tick) {
			return
		}
		w.mu.Lock()
		tokens := make([]string, 0, len(w.active))
		for tok, act := range w.active {
			if !act.lost {
				tokens = append(tokens, tok)
			}
		}
		w.mu.Unlock()
		if len(tokens) == 0 {
			continue
		}
		var resp HeartbeatResponse
		err := client.PostJSON(ctx, w.hc, w.opts.Dispatcher+"/v1/heartbeat",
			HeartbeatRequest{Worker: w.opts.Name, Leases: tokens}, &resp)
		if err != nil {
			continue // unreachable: keep executing, leases may expire
		}
		for _, tok := range resp.Lost {
			w.mu.Lock()
			act := w.active[tok]
			var cancel context.CancelFunc
			if act != nil && !act.lost {
				act.lost = true
				cancel = act.cancel
			}
			w.mu.Unlock()
			if act != nil {
				w.metrics.lost.Inc()
				w.opts.Logf("fcdpm workd: lease %s lost (reclaimed by dispatcher)", tok)
			}
			if cancel != nil {
				cancel()
			}
		}
	}
}

// spool buffers an undeliverable result to disk, durably. A disk-full
// failure additionally sheds leasing for SpoolShedPeriod: the result is
// lost either way (the shard re-dispatches), but taking more work while
// the spool volume is full would only manufacture more losses.
func (w *Worker) spool(req CompleteRequest) {
	if w.opts.SpoolDir == "" {
		w.opts.Logf("fcdpm workd: dropping undeliverable result %s (no spool dir); the shard will re-dispatch", req.RunID)
		return
	}
	b, err := json.Marshal(req)
	if err != nil {
		return
	}
	name := strings.ReplaceAll(req.Lease, "/", "_") + ".json"
	werr := w.opts.FS.MkdirAll(w.opts.SpoolDir)
	if werr == nil {
		werr = w.opts.FS.WriteFileAtomic(filepath.Join(w.opts.SpoolDir, name), b)
	}
	if werr != nil {
		w.metrics.spoolErrs.Inc()
		if vfs.IsDiskFull(werr) {
			w.mu.Lock()
			w.shedUntil = w.opts.Clock.Now().Add(w.opts.SpoolShedPeriod)
			w.mu.Unlock()
			w.metrics.sheds.Inc()
			w.opts.Logf("fcdpm workd: spool full, shedding leases for %s: %v", w.opts.SpoolShedPeriod, werr)
		} else {
			w.opts.Logf("fcdpm workd: spool write: %v", werr)
		}
		return
	}
	w.metrics.spooled.Inc()
	w.opts.Logf("fcdpm workd: spooled result %s (dispatcher unreachable)", req.RunID)
}

// drainSpool redelivers buffered results after a reconnect. Each file
// gets one attempt per drain; the spool empties as the dispatcher
// answers (duplicates included — at-least-once is the contract).
func (w *Worker) drainSpool(ctx context.Context) {
	if w.opts.SpoolDir == "" {
		return
	}
	names, err := w.opts.FS.ReadDir(w.opts.SpoolDir)
	if err != nil {
		return
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(w.opts.SpoolDir, name)
		b, err := w.opts.FS.ReadFile(path)
		if err != nil {
			continue
		}
		var req CompleteRequest
		if err := json.Unmarshal(b, &req); err != nil {
			w.opts.FS.Remove(path) // corrupt spool entry: unrecoverable
			continue
		}
		if !w.pushComplete(ctx, req, 1) {
			return // still unreachable; try again next drain
		}
		w.opts.FS.Remove(path)
		w.metrics.drained.Inc()
		w.opts.Logf("fcdpm workd: drained spooled result %s", req.RunID)
	}
}

// WorkerStats is a lifetime-counter snapshot, read by the chaos
// harness's invariant checks (re-execution accounting in particular).
type WorkerStats struct {
	Leased    int64 `json:"leased"`
	Executed  int64 `json:"executed"`
	Pushed    int64 `json:"pushed"`
	Spooled   int64 `json:"spooled"`
	Drained   int64 `json:"drained"`
	Lost      int64 `json:"lost"`
	SpoolErrs int64 `json:"spoolErrs"`
	Sheds     int64 `json:"sheds"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Leased:    int64(w.metrics.leased.Value()),
		Executed:  int64(w.metrics.executed.Value()),
		Pushed:    int64(w.metrics.pushed.Value()),
		Spooled:   int64(w.metrics.spooled.Value()),
		Drained:   int64(w.metrics.drained.Value()),
		Lost:      int64(w.metrics.lost.Value()),
		SpoolErrs: int64(w.metrics.spoolErrs.Value()),
		Sheds:     int64(w.metrics.sheds.Value()),
	}
}

// serveMetrics optionally exposes /metrics and /healthz.
func (w *Worker) serveMetrics() (func(), error) {
	if w.opts.Addr == "" {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.metrics.registry.WritePrometheus(rw)
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(rw, `{"status":"ok","worker":%q,"held":%d}`+"\n", w.opts.Name, w.held())
	})
	ln, err := net.Listen("tcp", w.opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("dispatch: worker listen: %w", err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln)
	return func() { hs.Close() }, nil
}

// RunWorker builds and runs a worker daemon until ctx cancels.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	w, err := NewWorker(opts)
	if err != nil {
		return err
	}
	return w.Run(ctx)
}
