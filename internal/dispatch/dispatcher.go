package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fcdpm/internal/cache"
	"fcdpm/internal/config"
	"fcdpm/internal/httpx"
	"fcdpm/internal/obs"
	"fcdpm/internal/report"
	"fcdpm/internal/runner"
	"fcdpm/internal/stream"
	"fcdpm/internal/version"
	"fcdpm/internal/vfs"
)

// Dispatcher defaults.
const (
	// DefaultAddr binds loopback; the fabric is an operator tool.
	DefaultAddr = "127.0.0.1:8081"
	// DefaultLeaseTTL is how long a granted lease lives without a
	// heartbeat before the shard is reclaimed.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultCacheBytes bounds the in-memory result cache tier.
	DefaultCacheBytes = 64 << 20
	// DefaultMaxBodyBytes bounds request bodies (413 beyond).
	DefaultMaxBodyBytes = 8 << 20
	// maxSweepShards bounds one sweep submission.
	maxSweepShards = 4096
	// drainRetryAfter is the Retry-After hint on draining 503s.
	drainRetryAfter = 5 * time.Second
	// emptyQueueRetryAfter hints pollers when no work was available.
	emptyQueueRetryAfter = 1 * time.Second
	// fenceRetryAfter is the Retry-After hint while admissions are
	// fenced by a WAL write failure.
	fenceRetryAfter = 2 * time.Second
	// epochGenShift positions the replay generation in a shard's lease
	// epoch: epochs after the Nth restart start at N<<epochGenShift, so
	// a pre-crash lease token can never collide with a post-restart one.
	epochGenShift = 20
)

// Shard states. Only completed and failed are terminal (and journaled);
// queued, leased, and executing are reconstructed as queued on restart.
const (
	shardQueued    = "queued"
	shardLeased    = "leased"
	shardExecuting = "executing"
	shardCompleted = "completed"
	shardFailed    = "failed"
)

// Options tunes the dispatcher.
type Options struct {
	// Addr is the listen address (default DefaultAddr).
	Addr string
	// StateDir holds the WAL (dispatch.wal) and the disk tier of the
	// result cache (cache/). Empty means ephemeral: no durability, no
	// restart resume — fine for tests, not for real sweeps.
	StateDir string
	// LeaseTTL is the heartbeat deadline (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// CacheBytes bounds the memory cache tier (default DefaultCacheBytes).
	CacheBytes int64
	// MaxBodyBytes bounds request bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// SkewGrace pads lease expiry before reclaim: a lease is reclaimed
	// only once it has been expired for this long, so a worker whose
	// clock runs slow by a bounded factor still heartbeats in time.
	// Default LeaseTTL/3 (tolerates ~25% slow worker clocks at the
	// TTL/3 heartbeat cadence).
	SkewGrace time.Duration
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests, chaos trials); nil means time.Now.
	// Every dispatcher timestamp — lease expiry, worker liveness, event
	// stream timestamps, uptime — reads this clock.
	Now func() time.Time
	// FS overrides the filesystem under the WAL and the result cache's
	// disk tier (chaos trials); nil means the real one.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = DefaultAddr
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.SkewGrace <= 0 {
		o.SkewGrace = o.LeaseTTL / 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.FS == nil {
		o.FS = vfs.Default
	}
	return o
}

// shard is one scenario cell's dispatch state.
type shard struct {
	doc      shardDoc
	state    string
	cached   bool
	errMsg   string
	worker   string
	epoch    int
	expires  time.Time
	enqueued time.Time
}

// sweep is one accepted sweep: its shards in submission order, progress
// accounting, and the NDJSON event stream.
type sweep struct {
	id, name  string
	shards    []*shard
	remaining int
	completed int
	cached    int
	failed    int
	events    *eventLog
	done      chan struct{}
}

func (s *sweep) status() string {
	switch {
	case s.remaining > 0:
		return "running"
	case s.failed > 0:
		return "failed"
	default:
		return "done"
	}
}

// shardRef addresses a shard in the dispatch queue.
type shardRef struct {
	sweep string
	index int
}

// Dispatcher owns the durable sweep queue: accepts sweeps, leases
// shards to workers, reclaims expired leases, journals every durable
// transition, and serves results byte-identically from the
// content-addressed cache.
type Dispatcher struct {
	opts    Options
	engine  string
	started time.Time
	cache   *cache.Store
	wal     *wal // nil when ephemeral
	metrics *dispatchMetrics
	mux     *http.ServeMux

	draining atomic.Bool
	// fenced marks the WAL unwritable after an append failure: admissions
	// and leases answer 503 + Retry-After until an append succeeds again
	// (each fenced request probes the journal, so the fence self-heals).
	fenced atomic.Bool
	// gen is the journal's replay generation: how many times this state
	// dir has been opened. Lease epochs of requeued shards start at
	// gen<<epochGenShift so pre-crash tokens never collide.
	gen int
	// genDirty marks a generation bump that is not yet durable (startup
	// compaction failed and the immediate op=gen append failed too). The
	// next successful journal append flushes it — until then the fence
	// keeps admissions and leases shut anyway.
	genDirty atomic.Bool

	mu     sync.Mutex
	seq    int
	sweeps map[string]*sweep
	order  []string
	queue  []shardRef
	// workers maps worker name → last contact, for the liveness gauge.
	workers map[string]time.Time
	// inState counts shards by state for the gauges and /v1/stats.
	inState map[string]int

	closeOnce sync.Once
	closeErr  error
}

// New builds a Dispatcher, replaying the WAL when StateDir holds one:
// terminal shards keep their state (completed shards must still have
// their body in the disk cache, else they re-run), every other shard
// re-enters the queue, and the journal is compacted.
func New(opts Options) (*Dispatcher, error) {
	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	cacheDir := ""
	if opts.StateDir != "" {
		cacheDir = filepath.Join(opts.StateDir, "cache")
	}
	store, err := cache.NewFS(opts.CacheBytes, cacheDir, reg, opts.FS)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		opts:    opts,
		engine:  version.Engine(),
		started: opts.Now(),
		cache:   store,
		metrics: newDispatchMetrics(reg),
		sweeps:  make(map[string]*sweep),
		workers: make(map[string]time.Time),
		inState: make(map[string]int),
	}
	reg.GaugeFunc("fcdpm_dispatch_queue_depth", "Shards waiting for a lease.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.queue))
	})
	reg.GaugeFunc("fcdpm_dispatch_wal_fenced", "1 while admissions and leasing are fenced by a WAL write failure.", func() float64 {
		if d.fenced.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("fcdpm_dispatch_shards_leased", "Shards leased, awaiting first heartbeat.", d.stateGauge(shardLeased))
	reg.GaugeFunc("fcdpm_dispatch_shards_executing", "Shards executing on workers.", d.stateGauge(shardExecuting))
	reg.GaugeFunc("fcdpm_dispatch_workers_live", "Workers heard from within 3 lease TTLs.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		live := 0
		cutoff := d.opts.Now().Add(-3 * d.opts.LeaseTTL)
		for _, seen := range d.workers {
			if seen.After(cutoff) {
				live++
			}
		}
		return float64(live)
	})
	if opts.StateDir != "" {
		w, records, err := openWAL(opts.FS, filepath.Join(opts.StateDir, "dispatch.wal"))
		if err != nil {
			return nil, err
		}
		d.wal = w
		if err := d.replay(records); err != nil {
			w.close()
			return nil, err
		}
	}
	d.mux = http.NewServeMux()
	d.routes()
	return d, nil
}

func (d *Dispatcher) stateGauge(state string) func() float64 {
	return func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.inState[state])
	}
}

// Handler returns the HTTP surface.
func (d *Dispatcher) Handler() http.Handler { return d.mux }

func (d *Dispatcher) routes() {
	d.mux.HandleFunc("POST /v1/sweeps", d.handleSweepPost)
	d.mux.HandleFunc("GET /v1/sweeps/{id}", d.handleSweepGet)
	d.mux.HandleFunc("GET /v1/sweeps/{id}/events", d.handleSweepEvents)
	d.mux.HandleFunc("GET /v1/sweeps/{id}/results", d.handleSweepResults)
	d.mux.HandleFunc("POST /v1/lease", d.handleLease)
	d.mux.HandleFunc("POST /v1/heartbeat", d.handleHeartbeat)
	d.mux.HandleFunc("POST /v1/complete", d.handleComplete)
	d.mux.HandleFunc("GET /v1/stats", d.handleStats)
	d.mux.HandleFunc("GET /healthz", d.handleHealthz)
	d.mux.HandleFunc("GET /metrics", d.handleMetrics)
}

// replay rebuilds dispatch state from the journal and compacts it.
// Terminal shards keep their outcome; a "completed" shard whose body no
// longer exists in the cache is demoted to queued (the WAL and the disk
// cache live in the same state dir, but a missing blob must mean
// re-simulation, never a hole in the results). Everything else —
// whatever state it was in when the dispatcher died — re-enters the
// queue; re-dispatch is idempotent so this is always safe.
func (d *Dispatcher) replay(records []json.RawMessage) error {
	type opOnly struct {
		Op string `json:"op"`
	}
	requeued := 0
	for _, rec := range records {
		var op opOnly
		if err := json.Unmarshal(rec, &op); err != nil {
			continue
		}
		switch op.Op {
		case "gen":
			var g walGen
			if err := json.Unmarshal(rec, &g); err == nil && g.Gen > d.gen {
				d.gen = g.Gen
			}
		case "sweep":
			var ws walSweep
			if err := json.Unmarshal(rec, &ws); err != nil {
				return fmt.Errorf("dispatch: wal sweep record: %w", err)
			}
			if ws.Engine != d.engine {
				// A sweep journaled by a different build: its cache keys are
				// unreachable by this engine, so its pending shards would
				// produce rows the submitter's keys don't address. Refuse to
				// guess — fail startup loudly.
				return fmt.Errorf("dispatch: wal sweep %s was accepted by engine %s, this build is %s", ws.ID, ws.Engine, d.engine)
			}
			sw := &sweep{
				id: ws.ID, name: ws.Name,
				shards: make([]*shard, len(ws.Shards)),
				events: newEventLog(d.opts.Now),
				done:   make(chan struct{}),
			}
			for i, doc := range ws.Shards {
				state, cached, errMsg := doc.State, doc.Cached, doc.Err
				doc.State, doc.Cached, doc.Err = "", false, ""
				sh := &shard{doc: doc, state: shardQueued}
				if state == shardCompleted {
					if _, ok := d.cache.Get(doc.Key); ok {
						sh.state, sh.cached = shardCompleted, cached
					}
				} else if state == shardFailed {
					sh.state, sh.errMsg = shardFailed, errMsg
				}
				sw.shards[i] = sh
			}
			d.adoptSweep(sw)
			var n int
			fmt.Sscanf(ws.ID, "swp-%d", &n)
			if n > d.seq {
				d.seq = n
			}
		case "shard":
			var rec2 walShard
			if err := json.Unmarshal(rec, &rec2); err != nil {
				return fmt.Errorf("dispatch: wal shard record: %w", err)
			}
			sw, ok := d.sweeps[rec2.Sweep]
			if !ok || rec2.Index < 0 || rec2.Index >= len(sw.shards) {
				continue
			}
			sh := sw.shards[rec2.Index]
			if sh.state == shardCompleted || sh.state == shardFailed {
				continue
			}
			if rec2.State == shardCompleted {
				if _, ok := d.cache.Get(sh.doc.Key); !ok {
					continue // body lost: stay queued, re-simulate
				}
				sh.cached = rec2.Cached
			}
			sh.state = rec2.State
			sh.errMsg = rec2.Err
		}
	}
	// This open is one generation newer than whatever wrote the journal.
	d.gen++
	// Rebuild derived state: counts, queue, event streams. Requeued
	// shards restart their lease epochs at the new generation's base, so
	// a lease token granted before the crash can never equal one granted
	// after it — a dead holder's stale failure verdict must not be
	// mistaken for the new holder's.
	now := d.opts.Now()
	for _, id := range d.order {
		sw := d.sweeps[id]
		for i, sh := range sw.shards {
			d.inState[sh.state]++
			switch sh.state {
			case shardCompleted:
				sw.completed++
				if sh.cached {
					sw.cached++
				}
			case shardFailed:
				sw.failed++
			default:
				sw.remaining++
				sh.enqueued = now
				sh.epoch = d.gen << epochGenShift
				d.queue = append(d.queue, shardRef{sweep: id, index: i})
				requeued++
			}
		}
		sw.events.append(Event{Kind: "recovered", Sweep: id,
			Detail: fmt.Sprintf("%d of %d shards pending after restart", sw.remaining, len(sw.shards))})
		if sw.remaining == 0 {
			d.finalizeLocked(sw)
		}
	}
	if requeued > 0 {
		d.metrics.reclaimed.Add(float64(requeued))
		d.opts.Logf("fcdpm dispatchd: recovered %d sweeps, requeued %d shards", len(d.order), requeued)
	}
	// Compaction is an optimization, not a prerequisite: the journal just
	// replayed cleanly, so if the rewrite fails (disk full at startup)
	// the dispatcher keeps running on the uncompacted file. The one thing
	// that must still become durable is the generation bump — without it
	// a second restart would reuse this generation's lease-epoch base and
	// a stale pre-crash verdict could collide with a live lease. Append
	// it through the normal path; if even that fails, the fence is up and
	// the first successful append flushes it (walAppend checks genDirty).
	if err := d.wal.compact(d.compactRecords()); err != nil {
		d.opts.Logf("fcdpm dispatchd: startup compaction failed, continuing on uncompacted journal: %v", err)
		if aerr := d.walAppend(walGen{Op: "gen", Gen: d.gen}); aerr != nil {
			d.genDirty.Store(true)
		}
	}
	return nil
}

// adoptSweep registers a sweep under the state lock's protection (New
// runs single-threaded, handleSweepPost holds d.mu).
func (d *Dispatcher) adoptSweep(sw *sweep) {
	d.sweeps[sw.id] = sw
	d.order = append(d.order, sw.id)
}

// compactRecords folds terminal shard states into one sweep record per
// live sweep, headed by the generation record that anchors lease-epoch
// bases for the next replay.
func (d *Dispatcher) compactRecords() []any {
	recs := []any{walGen{Op: "gen", Gen: d.gen}}
	for _, id := range d.order {
		sw := d.sweeps[id]
		ws := walSweep{Op: "sweep", ID: sw.id, Name: sw.name, Engine: d.engine,
			Shards: make([]shardDoc, len(sw.shards))}
		for i, sh := range sw.shards {
			doc := sh.doc
			if sh.state == shardCompleted || sh.state == shardFailed {
				doc.State, doc.Cached, doc.Err = sh.state, sh.cached, sh.errMsg
			}
			ws.Shards[i] = doc
		}
		recs = append(recs, ws)
	}
	return recs
}

// handleSweepPost validates every scenario up front (a sweep with one
// bad cell is rejected whole), journals the sweep, resolves cache-hit
// shards immediately, queues the rest, and answers 202.
func (d *Dispatcher) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if httpx.WriteBodyLimit(w, err) {
			return
		}
		httpx.WriteErr(w, 400, "invalid sweep request: %v", err)
		return
	}
	if len(req.Scenarios) == 0 {
		httpx.WriteErr(w, 400, "sweep has no scenarios")
		return
	}
	if len(req.Scenarios) > maxSweepShards {
		httpx.WriteErr(w, 400, "sweep exceeds %d shards", maxSweepShards)
		return
	}
	docs := make([]shardDoc, len(req.Scenarios))
	for i, raw := range req.Scenarios {
		spec, err := config.LoadValidated(bytes.NewReader(raw))
		if err != nil {
			httpx.WriteErr(w, 400, "scenario %d: %v", i, err)
			return
		}
		canon, err := spec.Canonical()
		if err != nil {
			httpx.WriteErr(w, 400, "scenario %d: %v", i, err)
			return
		}
		key, err := spec.CacheKey(d.engine)
		if err != nil {
			httpx.WriteErr(w, 400, "scenario %d: %v", i, err)
			return
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("cell-%04d", i)
		}
		docs[i] = shardDoc{Name: name, RunID: ShardRunID(key), Key: key, Spec: canon}
	}
	if d.draining.Load() {
		httpx.WriteUnavailable(w, drainRetryAfter, "draining")
		return
	}
	name := req.Name
	if name == "" {
		name = "sweep"
	}

	d.mu.Lock()
	d.seq++
	sw := &sweep{
		id: fmt.Sprintf("swp-%06d", d.seq), name: name,
		shards:    make([]*shard, len(docs)),
		remaining: len(docs),
		events:    newEventLog(d.opts.Now),
		done:      make(chan struct{}),
	}
	now := d.opts.Now()
	for i, doc := range docs {
		sw.shards[i] = &shard{doc: doc, state: shardQueued, enqueued: now}
	}
	// Journal the sweep before any shard becomes visible: once a 202
	// leaves, a restart must be able to finish the sweep. A failed append
	// fences the dispatcher and answers 503 + Retry-After: the client
	// retries, each retry probes the journal, and the first successful
	// append lifts the fence — admission degrades to back-pressure
	// instead of corrupting state or failing the sweep outright.
	if err := d.walAppend(walSweep{Op: "sweep", ID: sw.id, Name: sw.name, Engine: d.engine, Shards: docs}); err != nil {
		d.seq-- // the sweep was never admitted; don't burn the ID
		d.mu.Unlock()
		httpx.WriteUnavailable(w, fenceRetryAfter, "journal unwritable: %v", err)
		return
	}
	d.adoptSweep(sw)
	d.metrics.sweeps.Inc()
	d.metrics.shards.Add(float64(len(docs)))
	for range docs {
		d.inState[shardQueued]++
	}
	sw.events.append(Event{Kind: "accepted", Sweep: sw.id,
		Detail: fmt.Sprintf("%d shards", len(docs))})
	for i, sh := range sw.shards {
		if _, ok := d.cache.Get(sh.doc.Key); ok {
			if d.completeLocked(sw, i, shardCompleted, true, "", "") {
				continue
			}
			// The journal refused the cache-hit completion (the sweep
			// record itself just landed, so this is a mid-admission disk
			// failure). The shard is still queued state-wise; without a
			// queue entry it could never be leased, so it would wedge the
			// sweep forever. Queue it — the lease path retries the
			// cache-hit completion once the journal recovers.
		}
		d.queue = append(d.queue, shardRef{sweep: sw.id, index: i})
	}
	id, n := sw.id, len(docs)
	d.mu.Unlock()

	d.opts.Logf("fcdpm dispatchd: accepted %s (%d shards)", id, n)
	httpx.WriteJSON(w, 202, SweepAccepted{ID: id, Shards: n, Events: "/v1/sweeps/" + id + "/events"})
}

// walAppend journals one record; a nil WAL (ephemeral mode) accepts
// everything. Called with d.mu held so journal order matches state
// order. An append failure raises the fence (admissions and leases shed
// with 503 until the journal writes again); the first success after a
// failure lowers it.
func (d *Dispatcher) walAppend(v any) error {
	if d.wal == nil {
		return nil
	}
	if err := d.wal.append(v); err != nil {
		if !d.fenced.Swap(true) {
			d.metrics.fenceEvents.Inc()
			d.opts.Logf("fcdpm dispatchd: WAL append failed, fencing admissions: %v", err)
		}
		return err
	}
	if d.fenced.Swap(false) {
		d.opts.Logf("fcdpm dispatchd: WAL writable again, fence lifted")
	}
	if d.genDirty.Load() && d.wal.append(walGen{Op: "gen", Gen: d.gen}) == nil {
		d.genDirty.Store(false)
	}
	return nil
}

// walProbe is the op=probe record: a no-op line appended by a fenced
// lease path to test whether the journal recovered. Replay skips it;
// compaction drops it.
type walProbe struct {
	Op string `json:"op"`
}

// probeFence re-tests a fenced journal with a throwaway append, holding
// d.mu. Reports whether the dispatcher is still fenced afterwards.
func (d *Dispatcher) probeFence() bool {
	if !d.fenced.Load() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.fenced.Load() {
		return false
	}
	return d.walAppend(walProbe{Op: "probe"}) != nil
}

// completeLocked is the single place a shard reaches a terminal state:
// from a worker's delivery, from a cache hit at submission or lease
// time, or from replay-free failure paths. Caller holds d.mu. It
// reports whether the transition committed: false means the journal
// refused the record and the shard is still in its prior state — a
// caller that owns the shard's queue membership must put it back in the
// queue, or it can never be leased again.
func (d *Dispatcher) completeLocked(sw *sweep, idx int, state string, cached bool, errMsg, worker string) bool {
	sh := sw.shards[idx]
	if sh.state == shardCompleted || sh.state == shardFailed {
		return true
	}
	if err := d.walAppend(walShard{Op: "shard", Sweep: sw.id, Index: idx, State: state, Cached: cached, Err: errMsg}); err != nil {
		// The transition is not durable; leave the shard pending so it
		// re-dispatches rather than silently losing the outcome.
		d.opts.Logf("fcdpm dispatchd: journal append failed, holding %s/%d pending: %v", sw.id, idx, err)
		return false
	}
	d.inState[sh.state]--
	d.inState[state]++
	sh.state, sh.cached, sh.errMsg, sh.worker = state, cached, errMsg, worker
	sw.remaining--
	switch state {
	case shardCompleted:
		sw.completed++
		d.metrics.completed.Inc()
		if cached {
			sw.cached++
			d.metrics.cached.Inc()
		}
	case shardFailed:
		sw.failed++
		d.metrics.failed.Inc()
	}
	d.metrics.shardSeconds.Observe(d.opts.Now().Sub(sh.enqueued).Seconds())
	sw.events.append(Event{Kind: "shard", Sweep: sw.id, Shard: sh.doc.Name,
		State: state, Cached: cached, Worker: worker, Detail: errMsg})
	if sw.remaining == 0 {
		d.finalizeLocked(sw)
	}
	return true
}

// finalizeLocked resolves a sweep: terminal event, stream close, done.
func (d *Dispatcher) finalizeLocked(sw *sweep) {
	sw.events.append(Event{Kind: "resolved", Sweep: sw.id, State: sw.status(),
		Detail: fmt.Sprintf("%d completed (%d cached), %d failed", sw.completed, sw.cached, sw.failed)})
	sw.events.close()
	close(sw.done)
}

// handleLease grants up to Max queued shards to a worker. Shards whose
// result landed in the cache since they queued complete immediately
// instead of being granted — the lazy half of idempotent re-dispatch.
func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !d.decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpx.WriteErr(w, 400, "missing worker name")
		return
	}
	if req.Engine != d.engine {
		httpx.WriteErr(w, http.StatusConflict,
			"engine mismatch: dispatcher %s, worker %s", d.engine, req.Engine)
		return
	}
	if d.draining.Load() {
		httpx.WriteUnavailable(w, drainRetryAfter, "draining")
		return
	}
	// While the journal is unwritable, granting leases only burns worker
	// cycles: the resulting completions could not be journaled and would
	// be held pending anyway. Probe (so the fence lifts the moment the
	// disk recovers) and shed if still fenced.
	if d.probeFence() {
		httpx.WriteUnavailable(w, fenceRetryAfter, "journal unwritable: leasing fenced")
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	}

	d.mu.Lock()
	d.workers[req.Worker] = d.opts.Now()
	var granted []Shard
	// Bounded by the queue length at entry: a cache-hit shard whose
	// completion the journal refuses goes back on the queue, and an
	// unbounded loop would spin on it forever while the journal is down.
	for pops := len(d.queue); len(granted) < req.Max && len(d.queue) > 0 && pops > 0; pops-- {
		ref := d.queue[0]
		d.queue = d.queue[1:]
		sw := d.sweeps[ref.sweep]
		sh := sw.shards[ref.index]
		if sh.state != shardQueued {
			continue // reclaimed-and-completed while queued twice; skip
		}
		if _, ok := d.cache.Get(sh.doc.Key); ok {
			if !d.completeLocked(sw, ref.index, shardCompleted, true, "", "") {
				// Journal refused the completion: the shard is still
				// queued, and it just left the queue slice — put it back
				// or it can never be leased again.
				d.queue = append(d.queue, ref)
			}
			continue
		}
		now := d.opts.Now()
		sh.epoch++
		sh.worker = req.Worker
		sh.expires = now.Add(d.opts.LeaseTTL)
		d.inState[sh.state]--
		d.inState[shardLeased]++
		sh.state = shardLeased
		granted = append(granted, Shard{
			Sweep: sw.id, Index: ref.index, Name: sh.doc.Name,
			RunID: sh.doc.RunID, Key: sh.doc.Key, Spec: sh.doc.Spec,
			Lease: leaseToken(sw.id, ref.index, sh.epoch),
			TTLMs: d.opts.LeaseTTL.Milliseconds(),
		})
	}
	d.metrics.leases.Add(float64(len(granted)))
	d.mu.Unlock()

	if len(granted) == 0 {
		// Not an error: an empty grant with a poll hint.
		w.Header().Set("Retry-After", "1")
	}
	httpx.WriteJSON(w, 200, LeaseResponse{Shards: granted})
}

// leaseToken encodes a lease's identity; parseLease inverts it.
func leaseToken(sweepID string, index, epoch int) string {
	return fmt.Sprintf("%s/%d/%d", sweepID, index, epoch)
}

func parseLease(token string) (sweepID string, index, epoch int, ok bool) {
	parts := strings.Split(token, "/")
	if len(parts) != 3 {
		return "", 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &index); err != nil {
		return "", 0, 0, false
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &epoch); err != nil {
		return "", 0, 0, false
	}
	return parts[0], index, epoch, true
}

// ShardRunID derives the deterministic run identity of a shard from its
// content address: every re-dispatch of the same simulation shares one
// run ID, which is what "exactly one result row per RunID" means.
func ShardRunID(key string) string {
	return runner.RunID("shard", "key="+key)
}

// handleHeartbeat renews the presented leases. A lease that cannot be
// renewed (expired and reclaimed, superseded epoch, finished shard) is
// reported lost; the worker cancels that execution.
func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !d.decodeBody(w, r, &req) {
		return
	}
	resp := HeartbeatResponse{}
	d.mu.Lock()
	d.workers[req.Worker] = d.opts.Now()
	for _, token := range req.Leases {
		sweepID, idx, epoch, ok := parseLease(token)
		var sh *shard
		var sw *sweep
		if ok {
			if sw = d.sweeps[sweepID]; sw != nil && idx >= 0 && idx < len(sw.shards) {
				sh = sw.shards[idx]
			}
		}
		if sh == nil || sh.epoch != epoch || (sh.state != shardLeased && sh.state != shardExecuting) {
			resp.Lost = append(resp.Lost, token)
			continue
		}
		if sh.state == shardLeased {
			// First heartbeat: the worker confirmed pickup.
			d.inState[shardLeased]--
			d.inState[shardExecuting]++
			sh.state = shardExecuting
		}
		sh.expires = d.opts.Now().Add(d.opts.LeaseTTL)
		resp.Renewed = append(resp.Renewed, token)
	}
	d.mu.Unlock()
	httpx.WriteJSON(w, 200, resp)
}

// handleComplete accepts one shard outcome, at-least-once. Dedup rules:
//
//   - shard already terminal → duplicate:true (the worker drops it);
//     a success body is still cached, because results are free.
//   - stale epoch + success → accepted: a result is a result, whoever
//     computed it. The reclaimed twin will dedup at its own delivery.
//   - stale epoch + failure → ignored as duplicate: the lease was
//     reclaimed, so the failure verdict belongs to the new holder.
func (d *Dispatcher) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !d.decodeBody(w, r, &req) {
		return
	}
	sweepID, idx, epoch, ok := parseLease(req.Lease)
	if !ok {
		httpx.WriteErr(w, 400, "malformed lease %q", req.Lease)
		return
	}
	if req.OK {
		if len(req.Body) == 0 || !json.Valid(req.Body) {
			httpx.WriteErr(w, 400, "success completion without a valid body")
			return
		}
		// Cache before taking the lock: content-addressed, so this is
		// safe even for duplicates and stale leases.
		d.cache.Put(req.Key, req.Body)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if req.Worker != "" {
		d.workers[req.Worker] = d.opts.Now()
	}
	sw := d.sweeps[sweepID]
	if sw == nil || idx < 0 || idx >= len(sw.shards) {
		httpx.WriteErr(w, 404, "unknown shard %s/%d", sweepID, idx)
		return
	}
	sh := sw.shards[idx]
	if sh.state == shardCompleted || sh.state == shardFailed {
		d.metrics.duplicates.Inc()
		httpx.WriteJSON(w, 200, CompleteResponse{Duplicate: true})
		return
	}
	if req.OK {
		d.completeLocked(sw, idx, shardCompleted, false, "", req.Worker)
		httpx.WriteJSON(w, 200, CompleteResponse{})
		return
	}
	if sh.epoch != epoch {
		d.metrics.duplicates.Inc()
		httpx.WriteJSON(w, 200, CompleteResponse{Duplicate: true})
		return
	}
	d.completeLocked(sw, idx, shardFailed, false, req.Error, req.Worker)
	httpx.WriteJSON(w, 200, CompleteResponse{})
}

// decodeBody reads one bounded JSON body; 413 oversize, 400 malformed.
func (d *Dispatcher) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.opts.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if !httpx.WriteBodyLimit(w, err) {
			httpx.WriteErr(w, 400, "invalid request: %v", err)
		}
		return false
	}
	return true
}

// ReclaimExpired returns every shard whose lease expired to the queue
// under a fresh epoch. The old holder's heartbeat will report the lease
// lost; its success delivery, should one still arrive, is accepted by
// the stale-epoch rule. A lease is reclaimed only once it has been
// expired for SkewGrace: a worker whose clock runs slow by a bounded
// factor still lands its heartbeat inside the padded window instead of
// losing work to clock skew. Exported for the chaos harness, which
// drives reclamation from its own clock.
func (d *Dispatcher) ReclaimExpired() int {
	now := d.opts.Now()
	n := 0
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range d.order {
		sw := d.sweeps[id]
		for i, sh := range sw.shards {
			if sh.state != shardLeased && sh.state != shardExecuting {
				continue
			}
			if sh.expires.Add(d.opts.SkewGrace).After(now) {
				continue
			}
			d.inState[sh.state]--
			d.inState[shardQueued]++
			worker := sh.worker
			sh.state, sh.worker = shardQueued, ""
			sh.epoch++ // invalidate the dead holder's failure verdicts
			d.queue = append(d.queue, shardRef{sweep: id, index: i})
			d.metrics.expired.Inc()
			d.metrics.reclaimed.Inc()
			sw.events.append(Event{Kind: "reclaimed", Sweep: id, Shard: sh.doc.Name,
				Worker: worker, Detail: "lease expired"})
			n++
		}
	}
	return n
}

// handleSweepGet reports a sweep's progress document.
func (d *Dispatcher) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	sw, ok := d.sweeps[r.PathValue("id")]
	if !ok {
		d.mu.Unlock()
		httpx.WriteErr(w, 404, "unknown sweep")
		return
	}
	st := SweepStatus{
		ID: sw.id, Name: sw.name, Status: sw.status(),
		Shards: len(sw.shards), Remaining: sw.remaining,
		Completed: sw.completed, Cached: sw.cached, Failed: sw.failed,
		Cells: make([]ShardStatus, len(sw.shards)),
	}
	for i, sh := range sw.shards {
		st.Cells[i] = ShardStatus{Name: sh.doc.Name, Key: sh.doc.Key,
			State: sh.state, Cached: sh.cached, Worker: sh.worker, Err: sh.errMsg}
	}
	d.mu.Unlock()
	httpx.WriteJSON(w, 200, st)
}

// handleSweepEvents tails the sweep's NDJSON stream until it resolves
// or the client disconnects.
func (d *Dispatcher) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	sw, ok := d.sweeps[r.PathValue("id")]
	d.mu.Unlock()
	if !ok {
		httpx.WriteErr(w, 404, "unknown sweep")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(200)
	fl, _ := w.(http.Flusher)
	for i := 0; ; i++ {
		line, ok := sw.events.next(r.Context(), i)
		if !ok {
			return
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if fl != nil {
			fl.Flush()
		}
	}
}

// handleSweepResults streams one NDJSON line per completed shard, in
// submission order, each the exact cached report body — byte-identical
// to a local batch of the same specs. 409 until the sweep resolves.
func (d *Dispatcher) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	sw, ok := d.sweeps[r.PathValue("id")]
	var keys []string
	if ok {
		if sw.remaining > 0 {
			d.mu.Unlock()
			httpx.WriteErr(w, http.StatusConflict, "sweep still running (%d shards pending)", sw.remaining)
			return
		}
		for _, sh := range sw.shards {
			if sh.state == shardCompleted {
				keys = append(keys, sh.doc.Key)
			}
		}
	}
	d.mu.Unlock()
	if !ok {
		httpx.WriteErr(w, 404, "unknown sweep")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(200)
	for _, key := range keys {
		body, ok := d.cache.Get(key)
		if !ok {
			// A completed shard's body has vanished (ephemeral dispatcher
			// under memory pressure). Emit a typed error line: the client
			// fails loudly instead of silently missing a row.
			body, _ = json.Marshal(httpx.Error{Error: "result evicted: " + key})
			d.opts.Logf("fcdpm dispatchd: result body missing for key %s", key)
		}
		w.Write(body)
		w.Write([]byte("\n"))
	}
}

// statsPayload is the /v1/stats document.
type statsPayload struct {
	Sweeps  int            `json:"sweeps"`
	Queue   int            `json:"queue"`
	Workers int            `json:"workers"`
	Shards  map[string]int `json:"shards"`
	Cache   cache.Stats    `json:"cache"`
}

func (d *Dispatcher) handleStats(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	shards := make(map[string]int, len(d.inState))
	for k, v := range d.inState {
		if v != 0 {
			shards[k] = v
		}
	}
	doc := statsPayload{
		Sweeps: len(d.sweeps), Queue: len(d.queue),
		Workers: len(d.workers), Shards: shards,
	}
	d.mu.Unlock()
	doc.Cache = d.cache.Stats()
	httpx.WriteJSON(w, 200, doc)
}

func (d *Dispatcher) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if d.draining.Load() {
		status = "draining"
	}
	httpx.WriteJSON(w, 200, map[string]any{
		"status":  status,
		"engine":  d.engine,
		"build":   version.Get(),
		"uptimeS": d.opts.Now().Sub(d.started).Seconds(),
	})
}

func (d *Dispatcher) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.metrics.registry.WritePrometheus(w)
}

// eventLog marshals Events onto a stream.Log; the mutex keeps Seq dense
// under concurrent appends (same shape as the server's job streams).
// Timestamps come from the injected clock so fake-clock tests and chaos
// trials see consistent event times.
type eventLog struct {
	mu  sync.Mutex
	now func() time.Time
	log *stream.Log
}

func newEventLog(now func() time.Time) *eventLog {
	return &eventLog{now: now, log: stream.NewLog()}
}

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.log.Len()
	e.Ts = l.now().UTC().Format(time.RFC3339Nano)
	line, err := report.StableJSON(e)
	if err != nil {
		return
	}
	l.log.Append(line)
}

func (l *eventLog) close() { l.log.Close() }

func (l *eventLog) next(ctx context.Context, i int) ([]byte, bool) {
	return l.log.Next(ctx, i)
}

// Close flushes and closes the WAL. Dispatch state is already durable;
// in-flight leases simply expire on the next start.
func (d *Dispatcher) Close() error {
	d.closeOnce.Do(func() {
		d.draining.Store(true)
		if d.wal != nil {
			d.closeErr = d.wal.close()
		}
	})
	return d.closeErr
}
