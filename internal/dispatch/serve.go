package dispatch

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Serve runs the dispatcher until ctx is canceled (SIGTERM/SIGINT in
// the CLI), then drains: admission and leasing stop (503 + Retry-After)
// while in-flight completions are still accepted for a grace period, so
// workers mid-push lose nothing. State is durable throughout — a
// SIGKILL instead of a drain costs only the unexpired leases, which the
// next start reclaims.
func Serve(ctx context.Context, opts Options) error {
	d, err := New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", d.opts.Addr)
	if err != nil {
		d.Close()
		return fmt.Errorf("dispatch: listen: %w", err)
	}
	d.opts.Logf("fcdpm dispatchd: listening on http://%s (engine %s, lease TTL %s)",
		ln.Addr(), d.engine, d.opts.LeaseTTL)

	// Lease reclamation ticks a few times per TTL so a dead worker's
	// shards return to the queue promptly.
	reclaimCtx, stopReclaim := context.WithCancel(context.Background())
	defer stopReclaim()
	go func() {
		tick := d.opts.LeaseTTL / 3
		if tick < 200*time.Millisecond {
			tick = 200 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-reclaimCtx.Done():
				return
			case <-t.C:
				if n := d.ReclaimExpired(); n > 0 {
					d.opts.Logf("fcdpm dispatchd: reclaimed %d expired shard leases", n)
				}
			}
		}
	}()

	hs := &http.Server{Handler: d.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		d.Close()
		return fmt.Errorf("dispatch: %w", err)
	case <-ctx.Done():
	}
	d.draining.Store(true)
	d.opts.Logf("fcdpm dispatchd: draining (leasing stopped, completions still accepted)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	herr := hs.Shutdown(shutCtx)
	if cerr := d.Close(); cerr != nil {
		return cerr
	}
	if herr != nil {
		return fmt.Errorf("dispatch: shutdown: %w", herr)
	}
	d.opts.Logf("fcdpm dispatchd: stopped")
	return nil
}
