package dispatch

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcdpm/internal/vfs"
)

// countdownFS wraps the real filesystem and starts failing journal
// appends and atomic writes with a typed disk-full error once its
// budget of successful writes runs out. okLeft < 0 means unlimited.
type countdownFS struct {
	vfs.FS
	okLeft atomic.Int64
}

func newCountdownFS() *countdownFS {
	fs := &countdownFS{FS: vfs.Default}
	fs.okLeft.Store(-1)
	return fs
}

func (f *countdownFS) take() bool {
	for {
		n := f.okLeft.Load()
		if n < 0 {
			return true
		}
		if n == 0 {
			return false
		}
		if f.okLeft.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (f *countdownFS) WriteFileAtomic(path string, data []byte) error {
	if !f.take() {
		return &vfs.WriteError{Op: "write-atomic", Path: path, Err: vfs.ErrDiskFull}
	}
	return f.FS.WriteFileAtomic(path, data)
}

func (f *countdownFS) OpenAppend(path string) (vfs.AppendFile, error) {
	af, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &countdownAF{fs: f, path: path, inner: af}, nil
}

type countdownAF struct {
	fs    *countdownFS
	path  string
	inner vfs.AppendFile
}

func (a *countdownAF) Append(b []byte) error {
	if !a.fs.take() {
		return &vfs.WriteError{Op: "append", Path: a.path, Err: vfs.ErrDiskFull}
	}
	return a.inner.Append(b)
}

func (a *countdownAF) Truncate(size int64) error { return a.inner.Truncate(size) }
func (a *countdownAF) Close() error              { return a.inner.Close() }

// fakeClock is a mutable time source for Options.Now.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestDispatcherFakeClock pins the clock-injection contract: every
// time-dependent dispatcher behavior — uptime, lease expiry, skew
// grace — must follow Options.Now, not the wall clock. (Two call sites
// used to read time.Now() directly, which made lease-TTL behavior
// untestable without real sleeps.)
func TestDispatcherFakeClock(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	ttl := 10 * time.Second
	d, ts := newTestDispatcher(t, Options{LeaseTTL: ttl, Now: clock.Now})

	// Uptime follows the fake clock exactly.
	clock.Advance(90 * time.Second)
	var health struct {
		UptimeS float64 `json:"uptimeS"`
	}
	httpGetJSON(t, ts.URL+"/healthz", &health)
	if health.UptimeS != 90 {
		t.Fatalf("uptimeS = %v, want exactly 90 (uptime must follow the injected clock)", health.UptimeS)
	}

	// Admit one shard and lease it.
	var acc SweepAccepted
	httpPostJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Name: "t",
		Scenarios: []json.RawMessage{scenarioJSON("a", 1)}}, &acc)
	var lease LeaseResponse
	httpPostJSON(t, ts.URL+"/v1/lease", LeaseRequest{Worker: "w", Engine: d.engine, Max: 1}, &lease)
	if len(lease.Shards) != 1 {
		t.Fatalf("leased %d shards, want 1", len(lease.Shards))
	}

	// Expired by TTL but inside the skew grace (TTL/3): a worker whose
	// clock runs slow within tolerance must not lose its lease.
	clock.Advance(ttl + ttl/6)
	d.ReclaimExpired()
	if n := d.stateCount(shardLeased); n != 1 {
		t.Fatalf("shard reclaimed inside the skew-grace window (leased=%d, want 1)", n)
	}

	// Past TTL + grace: reclaimed.
	clock.Advance(ttl / 3)
	d.ReclaimExpired()
	if n := d.stateCount(shardQueued); n != 1 {
		t.Fatalf("shard not reclaimed after TTL+grace (queued=%d, want 1)", n)
	}
}

func (d *Dispatcher) stateCount(state string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inState[state]
}

// TestWALFenceAdmissions: a journal append failure must fence
// admissions behind 503 + Retry-After (never admit a sweep the WAL
// didn't record), and the fence must lift by itself once the journal
// writes again.
func TestWALFenceAdmissions(t *testing.T) {
	fs := newCountdownFS()
	_, ts := newTestDispatcher(t, Options{
		LeaseTTL: time.Second, StateDir: t.TempDir(), FS: fs,
	})

	fs.okLeft.Store(0) // disk full from now on
	req := SweepRequest{Name: "t", Scenarios: []json.RawMessage{scenarioJSON("a", 1)}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with unwritable journal: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fenced 503 has no Retry-After header")
	}

	fs.okLeft.Store(-1) // disk recovers
	var acc SweepAccepted
	httpPostJSON(t, ts.URL+"/v1/sweeps", req, &acc)
	if acc.Shards != 1 {
		t.Fatalf("post-recovery submit accepted %d shards, want 1", acc.Shards)
	}
}

// TestCacheHitSurvivesJournalFailure is the regression test for a wedge
// the chaos harness found: a sweep whose cache-hit completion the
// journal refuses mid-admission left the shard in the queued state but
// absent from the queue — unleasable forever, sweep never resolves. The
// shard must instead stay queued-and-queued, and complete (from cache,
// zero executions) once the journal recovers.
func TestCacheHitSurvivesJournalFailure(t *testing.T) {
	fs := newCountdownFS()
	_, ts := newTestDispatcher(t, Options{
		LeaseTTL: time.Second, StateDir: t.TempDir(), FS: fs,
	})
	w, _ := startTestWorker(t, "w1", ts.URL, 1)

	// First sweep executes for real and populates the cache.
	req := SweepRequest{Name: "t", Scenarios: []json.RawMessage{scenarioJSON("a", 1)}}
	var acc SweepAccepted
	httpPostJSON(t, ts.URL+"/v1/sweeps", req, &acc)
	waitSweepDone(t, ts, acc.ID, 15*time.Second)
	execsBefore := w.Stats().Executed

	// Second, identical sweep: the sweep record lands (budget 1), then
	// the cache-hit completion's shard record fails.
	fs.okLeft.Store(1)
	var acc2 SweepAccepted
	httpPostJSON(t, ts.URL+"/v1/sweeps", req, &acc2)

	// Journal recovers; the worker's next lease probes the fence, pops
	// the shard, and completes it from the cache.
	fs.okLeft.Store(-1)
	waitSweepDone(t, ts, acc2.ID, 15*time.Second)
	if d := w.Stats().Executed - execsBefore; d != 0 {
		t.Fatalf("recovery re-executed %d shard(s), want 0 (pure cache hit)", d)
	}
}

// TestWorkerSpoolShed: a disk-full spool write must count a shed and
// pause leasing for the shed period instead of silently dropping the
// result class again and again.
func TestWorkerSpoolShed(t *testing.T) {
	fs := newCountdownFS()
	fs.okLeft.Store(0)
	w, err := NewWorker(WorkerOptions{
		Dispatcher: "http://127.0.0.1:1", Name: "shed", Workers: 1,
		SpoolDir: t.TempDir(), SpoolShedPeriod: time.Minute,
		FS: fs, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.poolStop()

	w.spool(CompleteRequest{Worker: "shed", Lease: "swp-000001/0/1", RunID: "r", Key: "k", OK: true})
	st := w.Stats()
	if st.SpoolErrs != 1 || st.Sheds != 1 {
		t.Fatalf("stats after disk-full spool = %+v, want SpoolErrs=1 Sheds=1", st)
	}
	w.mu.Lock()
	shed := w.shedUntil
	w.mu.Unlock()
	if !shed.After(w.opts.Clock.Now()) {
		t.Fatal("disk-full spool did not raise the shed window")
	}
}

func httpGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func httpPostJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}
