// Package dispatch is the distributed sweep fabric: a dispatcher
// service that owns a durable queue of sweep shards, and worker daemons
// that lease shards over HTTP/JSON, execute them on a local runner
// pool, and push results back with at-least-once delivery. The fabric's
// headline property is robustness — no shard is ever lost, duplicated,
// or wedged by a dead machine:
//
//   - every sweep and every terminal shard transition is journaled to an
//     append-only, fsync-per-record WAL, so a dispatcher restart resumes
//     mid-sweep with nothing forgotten;
//   - leases expire: shards held by a crashed or partitioned worker
//     return to the queue and are re-dispatched;
//   - re-execution is idempotent: run IDs derive from the scenario's
//     content address, results land in the content-addressed cache, and
//     duplicate completions deduplicate by construction;
//   - workers degrade gracefully when the dispatcher is unreachable —
//     in-flight shards finish, results spool to disk, and the spool
//     drains on reconnect.
//
// See DESIGN.md §11 for the state machine and invariants.
package dispatch

import "encoding/json"

// SweepRequest is the POST /v1/sweeps body — the same shape the
// simulation server accepts, so specs move between the two unchanged.
type SweepRequest struct {
	Name      string            `json:"name"`
	Scenarios []json.RawMessage `json:"scenarios"`
}

// SweepAccepted is the 202 response to a sweep submission.
type SweepAccepted struct {
	ID     string `json:"id"`
	Shards int    `json:"shards"`
	Events string `json:"events"`
}

// LeaseRequest is the POST /v1/lease body: a worker asking for up to
// Max shards. Engine is the worker's build tag; the dispatcher refuses
// a mismatched worker (409) because its results would hash to foreign
// cache addresses and break byte-identity.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Engine string `json:"engine"`
	Max    int    `json:"max"`
}

// Shard is one leased unit of work: a single scenario cell of a sweep,
// identified durably by its content-derived RunID and addressed by the
// lease token for heartbeat/complete calls.
type Shard struct {
	Sweep string `json:"sweep"`
	Index int    `json:"index"`
	Name  string `json:"name"`
	// RunID is the deterministic run identity (derived from Key), the
	// unit of exactly-once accounting.
	RunID string `json:"runId"`
	// Key is the result's content address under the shared engine tag.
	Key string `json:"key"`
	// Spec is the canonical scenario JSON; building it reproduces the
	// submitted simulation exactly.
	Spec json.RawMessage `json:"spec"`
	// Lease is the opaque token ("sweep/index/epoch") presented on
	// heartbeat and completion. A reclaimed shard gets a new epoch, which
	// invalidates the old holder's failure reports but never its results.
	Lease string `json:"lease"`
	// TTLMs is the lease time-to-live; heartbeat well within it.
	TTLMs int64 `json:"ttlMs"`
}

// LeaseResponse carries zero or more granted shards.
type LeaseResponse struct {
	Shards []Shard `json:"shards"`
}

// HeartbeatRequest renews the named leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []string `json:"leases"`
}

// HeartbeatResponse partitions the presented leases: renewed ones were
// extended; lost ones expired and were reclaimed — the worker should
// cancel that shard's execution and forget the lease.
type HeartbeatResponse struct {
	Renewed []string `json:"renewed"`
	Lost    []string `json:"lost"`
}

// CompleteRequest delivers one shard's outcome. Body is the rendered
// run report on success (the exact bytes every surface serves); Error
// the failure cause otherwise.
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Lease  string          `json:"lease"`
	RunID  string          `json:"runId"`
	Key    string          `json:"key"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// CompleteResponse acknowledges a delivery. Duplicate means the shard
// had already resolved (a re-dispatched twin finished first, or this is
// a retry of a push that did land) — the worker drops the result and
// moves on; at-least-once delivery plus this dedup yields exactly-once
// accounting.
type CompleteResponse struct {
	Duplicate bool `json:"duplicate"`
}

// ShardStatus is one shard's externally visible state.
type ShardStatus struct {
	Name   string `json:"name"`
	Key    string `json:"key"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Worker string `json:"worker,omitempty"`
	Err    string `json:"error,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} document.
type SweepStatus struct {
	ID        string        `json:"id"`
	Name      string        `json:"name"`
	Status    string        `json:"status"` // running | done | failed
	Shards    int           `json:"shards"`
	Remaining int           `json:"remaining"`
	Completed int           `json:"completed"`
	Cached    int           `json:"cached"`
	Failed    int           `json:"failed"`
	Cells     []ShardStatus `json:"cells"`
}

// Done reports whether the sweep has resolved.
func (s *SweepStatus) Done() bool { return s.Status != "running" }

// Event is one NDJSON line of a sweep's progress stream. Seq is dense
// per stream; a dispatcher restart starts a fresh stream (beginning
// with a "recovered" event), so tailing clients resync from zero.
type Event struct {
	Seq    int    `json:"seq"`
	Ts     string `json:"ts"`
	Kind   string `json:"kind"` // accepted | shard | reclaimed | resolved | recovered
	Sweep  string `json:"sweep"`
	Shard  string `json:"shard,omitempty"`
	State  string `json:"state,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Worker string `json:"worker,omitempty"`
	Detail string `json:"detail,omitempty"`
}
