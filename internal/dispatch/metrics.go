package dispatch

import "fcdpm/internal/obs"

// dispatchMetrics is the dispatcher's instrument set, registered on one
// obs.Registry that /metrics renders and /v1/stats reads — the two
// views cannot drift.
type dispatchMetrics struct {
	registry *obs.Registry

	sweeps     *obs.Counter
	shards     *obs.Counter
	completed  *obs.Counter
	failed     *obs.Counter
	cached     *obs.Counter
	leases     *obs.Counter
	expired    *obs.Counter
	reclaimed  *obs.Counter
	duplicates *obs.Counter
	// fenceEvents counts WAL-unwritable episodes (failure runs, not
	// individual failed appends); the fenced gauge shows the live state.
	fenceEvents *obs.Counter

	// shardSeconds is end-to-end shard latency: enqueue to terminal
	// transition, including every re-dispatch in between.
	shardSeconds *obs.Histogram
}

// newDispatchMetrics registers the dispatcher series. The queue-depth,
// in-flight, and worker-liveness gauges are registered by the
// Dispatcher itself as GaugeFuncs over its state, so they can never
// drift from the truth.
func newDispatchMetrics(reg *obs.Registry) *dispatchMetrics {
	return &dispatchMetrics{
		registry:    reg,
		sweeps:      reg.Counter("fcdpm_dispatch_sweeps_total", "Sweeps accepted."),
		shards:      reg.Counter("fcdpm_dispatch_shards_total", "Shards accepted across all sweeps."),
		completed:   reg.Counter("fcdpm_dispatch_shards_completed_total", "Shards that reached completed."),
		failed:      reg.Counter("fcdpm_dispatch_shards_failed_total", "Shards that reached failed."),
		cached:      reg.Counter("fcdpm_dispatch_shards_cached_total", "Shards resolved from the content-addressed cache without dispatch."),
		leases:      reg.Counter("fcdpm_dispatch_leases_granted_total", "Shard leases granted to workers."),
		expired:     reg.Counter("fcdpm_dispatch_lease_expirations_total", "Leases that expired without completion."),
		reclaimed:   reg.Counter("fcdpm_dispatch_shards_reclaimed_total", "Shards returned to the queue (expired leases and restart recovery)."),
		duplicates:  reg.Counter("fcdpm_dispatch_duplicate_completions_total", "Completions for shards that had already resolved."),
		fenceEvents: reg.Counter("fcdpm_dispatch_wal_fence_events_total", "WAL-unwritable episodes that fenced admissions and leasing."),
		shardSeconds: reg.Histogram("fcdpm_dispatch_shard_seconds",
			"End-to-end shard latency, enqueue to terminal state.", obs.DurationBuckets),
	}
}

// workerMetrics is the worker daemon's instrument set.
type workerMetrics struct {
	registry *obs.Registry
	pool     *obs.PoolMetrics
	sim      *obs.SimMetrics

	leased   *obs.Counter
	executed *obs.Counter
	pushed   *obs.Counter
	pushErrs *obs.Counter
	spooled  *obs.Counter
	drained  *obs.Counter
	lost     *obs.Counter
	// spoolErrs counts spool writes that failed; sheds counts the
	// spool-full shed episodes those failures triggered (the worker
	// stopped leasing for SpoolShedPeriod).
	spoolErrs *obs.Counter
	sheds     *obs.Counter
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	obs.RegisterIOWriteFailures(reg)
	return &workerMetrics{
		registry:  reg,
		pool:      obs.NewPoolMetrics(reg),
		sim:       obs.NewSimMetrics(reg),
		leased:    reg.Counter("fcdpm_workd_shards_leased_total", "Shards leased from the dispatcher."),
		executed:  reg.Counter("fcdpm_workd_shards_executed_total", "Shard simulations finished locally (either outcome)."),
		pushed:    reg.Counter("fcdpm_workd_results_pushed_total", "Results delivered to the dispatcher."),
		pushErrs:  reg.Counter("fcdpm_workd_push_retries_total", "Failed delivery attempts that were retried."),
		spooled:   reg.Counter("fcdpm_workd_results_spooled_total", "Results buffered to the disk spool (dispatcher unreachable)."),
		drained:   reg.Counter("fcdpm_workd_spool_drained_total", "Spooled results delivered after reconnect."),
		lost:      reg.Counter("fcdpm_workd_leases_lost_total", "Leases the dispatcher reclaimed while we held them."),
		spoolErrs: reg.Counter("fcdpm_workd_spool_errors_total", "Spool writes that failed (results delivered live or dropped to re-dispatch)."),
		sheds:     reg.Counter("fcdpm_workd_spool_sheds_total", "Spool-full shed episodes: leasing paused until the spool drains."),
	}
}
