package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"fcdpm/internal/httpx"
)

// httpError is a non-2xx response from the dispatcher: status code,
// typed error message, and the Retry-After hint when the server sent
// one. A nil-wrapped plain error means the request never got a
// response (network failure) — callers distinguish the two with
// errors.As.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string {
	return fmt.Sprintf("http %d: %s", e.code, e.msg)
}

// postJSON posts v to url and decodes a 2xx response into out (out may
// be nil to discard). Non-2xx responses return *httpError; transport
// failures return the underlying error.
func postJSON(ctx context.Context, hc *http.Client, url string, v, out any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		he := &httpError{code: resp.StatusCode}
		var typed httpx.Error
		if json.Unmarshal(body, &typed) == nil && typed.Error != "" {
			he.msg = typed.Error
		} else {
			he.msg = http.StatusText(resp.StatusCode)
		}
		if d, ok := httpx.RetryAfter(resp); ok {
			he.retryAfter = d
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// getJSON fetches url and decodes a 2xx response into out.
func getJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		he := &httpError{code: resp.StatusCode}
		var typed httpx.Error
		if json.Unmarshal(body, &typed) == nil && typed.Error != "" {
			he.msg = typed.Error
		} else {
			he.msg = http.StatusText(resp.StatusCode)
		}
		if d, ok := httpx.RetryAfter(resp); ok {
			he.retryAfter = d
		}
		return he
	}
	return json.Unmarshal(body, out)
}

// sleepCtx sleeps d or until ctx is done; reports false on cancel.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
