package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"fcdpm/internal/cache"
	"fcdpm/internal/client"
)

// ClientOptions tunes a remote sweep submission.
type ClientOptions struct {
	// Base is the dispatcher's base URL.
	Base string
	// Name labels the sweep.
	Name string
	// Rows, when set, writes the completed sweep's result rows (NDJSON,
	// submission order, byte-identical to a local batch) to this path.
	Rows string
	// Events receives the NDJSON progress stream; nil discards it.
	Events io.Writer
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o ClientOptions) withDefaults() ClientOptions {
	o.Base = strings.TrimRight(o.Base, "/")
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Client == nil {
		o.Client = &http.Client{} // no global timeout: event tails are long-lived
	}
	return o
}

// SubmitSweep submits scenarios, tails progress until the sweep
// resolves, and fetches the rows. It survives dispatcher restarts: a
// dropped event stream falls back to status polling with backoff and
// re-tails once the dispatcher answers again. A canceled ctx returns
// an error wrapping runner.ErrInterrupted (exit code 3) — the sweep
// keeps running server-side and can be re-attached by resubmitting the
// identical spec (idempotent by content address). A resolved sweep
// with failed shards returns a plain error (exit code 1).
func SubmitSweep(ctx context.Context, opts ClientOptions, req SweepRequest) error {
	opts = opts.withDefaults()
	if opts.Base == "" {
		return errors.New("dispatch: submit needs a dispatcher URL")
	}

	// Submit, retrying transient refusals (draining, unreachable).
	var acc SweepAccepted
	err := client.PostJSONRetry(ctx, opts.Client, opts.Base+"/v1/sweeps", req, &acc,
		client.Retry{Attempts: 5, Base: 250 * time.Millisecond, Max: 5 * time.Second, ID: "submit"})
	if err != nil {
		return fmt.Errorf("dispatch: submit: %w", err)
	}
	opts.Logf("fcdpm sweep: accepted as %s (%d shards)", acc.ID, acc.Shards)

	st, err := waitForSweep(ctx, opts, acc.ID)
	if err != nil {
		return err
	}
	if opts.Rows != "" {
		if err := fetchRows(ctx, opts, acc.ID); err != nil {
			return err
		}
	}
	if st.Failed > 0 {
		return fmt.Errorf("dispatch: sweep %s: %d of %d shards failed", acc.ID, st.Failed, st.Shards)
	}
	return nil
}

// waitForSweep tails events until the sweep resolves, re-tailing across
// disconnects (dispatcher restarts included). A typed refusal from the
// status poll — the dispatcher answered but doesn't know the sweep,
// i.e. a restart without the sweep's state dir — is unrecoverable.
func waitForSweep(ctx context.Context, opts ClientOptions, id string) (*SweepStatus, error) {
	var st *SweepStatus
	err := client.Follow{
		Tail: func(ctx context.Context) error {
			return client.TailNDJSON(ctx, opts.Client, opts.Base+"/v1/sweeps/"+id+"/events",
				func(line string) {
					if opts.Events != nil {
						fmt.Fprintln(opts.Events, line)
					}
				})
		},
		Poll: func(ctx context.Context) (bool, error) {
			cur, err := sweepStatus(ctx, opts, id)
			if err != nil {
				return false, err
			}
			st = cur
			return cur.Done(), nil
		},
		ID: id,
		OnRetry: func(err error) {
			opts.Logf("fcdpm sweep: dispatcher unreachable, retrying: %v", err)
		},
	}.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("dispatch: sweep %s: %w", id, err)
	}
	return st, nil
}

func sweepStatus(ctx context.Context, opts ClientOptions, id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := client.GetJSON(ctx, opts.Client, opts.Base+"/v1/sweeps/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// fetchRows downloads the result rows and writes them atomically.
func fetchRows(ctx context.Context, opts ClientOptions, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.Base+"/v1/sweeps/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("dispatch: results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dispatch: results: http %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("dispatch: results: %w", err)
	}
	if opts.Rows == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := cache.AtomicWriteFile(opts.Rows, b); err != nil {
		return err
	}
	opts.Logf("fcdpm sweep: wrote %d bytes of result rows to %s", len(b), opts.Rows)
	return nil
}
