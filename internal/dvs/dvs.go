// Package dvs implements the dynamic-voltage-scaling companion of the
// paper's prior work [10] ("Extending the lifetime of fuel cell based
// hybrid systems", DAC 2006): a processor with discrete voltage/frequency
// levels executing a periodic task, where the speed choice changes the
// load profile the hybrid power source must serve.
//
// The point the prior work makes — and this package demonstrates on top of
// the fcdpm simulator — is that the speed minimizing the *embedded
// system's* energy is not the speed minimizing *fuel*: under a
// load-following source, the convex fuel map penalizes the high current of
// fast, bursty execution beyond its energy cost, shifting the fuel-optimal
// operating point toward lower speeds.
//
// The package emits standard workload.Trace values, so every fcdpm policy,
// predictor, and experiment runs unchanged on DVS-shaped loads.
package dvs

import (
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/workload"
)

// Level is one processor operating point.
type Level struct {
	// Freq is the clock frequency in Hz.
	Freq float64
	// Voltage is the core supply voltage in volts.
	Voltage float64
}

// Processor models a DVS-capable processor as a load on the regulated
// 12 V rail through its own (ideal) core regulator: the rail current at an
// operating point is
//
//	I(f, V) = (Ceff·V²·f + Pleak) / Vrail
//
// — the classic α·C·V²·f dynamic power plus a fixed leakage power.
type Processor struct {
	// Name identifies the processor in reports.
	Name string
	// Levels are the supported operating points, sorted ascending by
	// frequency.
	Levels []Level
	// Ceff is the effective switched capacitance in farads.
	Ceff float64
	// LeakPower is the leakage power in watts, paid whenever the core is
	// powered (active periods only; idle states are the device model's
	// business).
	LeakPower float64
	// Rail is the supply rail voltage the hybrid source regulates (12 V
	// in the paper's system).
	Rail float64
}

// Validate reports whether the processor description is usable.
func (p *Processor) Validate() error {
	switch {
	case len(p.Levels) == 0:
		return fmt.Errorf("dvs: no operating points")
	case p.Ceff <= 0:
		return fmt.Errorf("dvs: non-positive Ceff %v", p.Ceff)
	case p.LeakPower < 0:
		return fmt.Errorf("dvs: negative leakage %v", p.LeakPower)
	case p.Rail <= 0:
		return fmt.Errorf("dvs: non-positive rail voltage %v", p.Rail)
	}
	prev := 0.0
	for k, l := range p.Levels {
		if l.Freq <= prev {
			return fmt.Errorf("dvs: level %d frequency %v not increasing", k, l.Freq)
		}
		if l.Voltage <= 0 {
			return fmt.Errorf("dvs: level %d non-positive voltage", k)
		}
		prev = l.Freq
	}
	return nil
}

// Current returns the rail current at level index k in amps.
func (p *Processor) Current(k int) float64 {
	l := p.Levels[k]
	return (p.Ceff*l.Voltage*l.Voltage*l.Freq + p.LeakPower) / p.Rail
}

// XScale600 returns a processor model in the class of the era's embedded
// application processors (five operating points, 150–600 MHz, 0.75–1.3 V),
// with Ceff and leakage chosen so the top level draws ~5.3 W at the 12 V
// rail — a plausible compute load beside the camcorder's drive electronics.
func XScale600() *Processor {
	return &Processor{
		Name: "xscale-class 600 MHz",
		Levels: []Level{
			{Freq: 150e6, Voltage: 0.75},
			{Freq: 250e6, Voltage: 0.87},
			{Freq: 400e6, Voltage: 1.00},
			{Freq: 500e6, Voltage: 1.15},
			{Freq: 600e6, Voltage: 1.30},
		},
		Ceff:      5e-9,
		LeakPower: 0.25,
		Rail:      12,
	}
}

// Task is a periodic workload: Cycles of work released every Period
// seconds, due by the end of the period.
type Task struct {
	// Cycles per job.
	Cycles float64
	// Period (= relative deadline) in seconds.
	Period float64
	// Jobs is how many periods a generated trace covers.
	Jobs int
}

// Validate reports whether the task is well-formed.
func (t Task) Validate() error {
	switch {
	case t.Cycles <= 0:
		return fmt.Errorf("dvs: non-positive cycle count %v", t.Cycles)
	case t.Period <= 0:
		return fmt.Errorf("dvs: non-positive period %v", t.Period)
	case t.Jobs < 1:
		return fmt.Errorf("dvs: need at least one job, got %d", t.Jobs)
	}
	return nil
}

// ExecTime returns the job execution time at level k.
func (p *Processor) ExecTime(t Task, k int) float64 {
	return t.Cycles / p.Levels[k].Freq
}

// Feasible reports whether level k meets the task deadline.
func (p *Processor) Feasible(t Task, k int) bool {
	return p.ExecTime(t, k) <= t.Period
}

// Trace generates the task-slot workload produced by running the task at
// level k: each period becomes one slot with an active burst of
// ExecTime(k) at the level's rail current and the remaining slack as idle.
// It errors if the level misses the deadline.
func (p *Processor) Trace(t Task, k int) (*workload.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k >= len(p.Levels) {
		return nil, fmt.Errorf("dvs: level index %d out of range", k)
	}
	if !p.Feasible(t, k) {
		return nil, fmt.Errorf("dvs: level %d (%.0f MHz) misses the %.2fs deadline (exec %.2fs)",
			k, p.Levels[k].Freq/1e6, t.Period, p.ExecTime(t, k))
	}
	exec := p.ExecTime(t, k)
	tr := &workload.Trace{Name: fmt.Sprintf("%s @L%d", p.Name, k)}
	for j := 0; j < t.Jobs; j++ {
		tr.Slots = append(tr.Slots, workload.Slot{
			Idle:          t.Period - exec,
			Active:        exec,
			ActiveCurrent: p.Current(k),
		})
	}
	return tr, nil
}

// ChargePerPeriod returns the load charge (A-s) one period consumes at
// level k, with the device idling at idleCurrent during the slack — the
// quantity classic DVS minimizes (load energy / rail voltage).
func (p *Processor) ChargePerPeriod(t Task, k int, idleCurrent float64) float64 {
	exec := p.ExecTime(t, k)
	return p.Current(k)*exec + idleCurrent*(t.Period-exec)
}

// FuelPerPeriod returns the stack charge (A-s) one period consumes at
// level k when the source *follows the load* (ASAP-style) — the convex
// fuel map applied to each phase separately.
func FuelPerPeriod(sys *fuelcell.System, p *Processor, t Task, k int, idleCurrent float64) float64 {
	exec := p.ExecTime(t, k)
	active := sys.Clamp(p.Current(k))
	idle := sys.Clamp(idleCurrent)
	return sys.Fuel(active, exec) + sys.Fuel(idle, t.Period-exec)
}

// EnergyOptimalLevel returns the feasible level minimizing load charge per
// period, with ties broken toward the lower index. It returns -1 when no
// level is feasible.
func EnergyOptimalLevel(p *Processor, t Task, idleCurrent float64) int {
	best, bestVal := -1, math.Inf(1)
	for k := range p.Levels {
		if !p.Feasible(t, k) {
			continue
		}
		if v := p.ChargePerPeriod(t, k, idleCurrent); v < bestVal {
			best, bestVal = k, v
		}
	}
	return best
}

// FuelOptimalLevel returns the feasible level minimizing *fuel* per period
// under a load-following source. It returns -1 when no level is feasible.
func FuelOptimalLevel(sys *fuelcell.System, p *Processor, t Task, idleCurrent float64) int {
	best, bestVal := -1, math.Inf(1)
	for k := range p.Levels {
		if !p.Feasible(t, k) {
			continue
		}
		if v := FuelPerPeriod(sys, p, t, k, idleCurrent); v < bestVal {
			best, bestVal = k, v
		}
	}
	return best
}
