package dvs

import (
	"math"
	"testing"

	"fcdpm/internal/fuelcell"
)

func task() Task { return Task{Cycles: 3e8, Period: 4, Jobs: 10} }

func TestProcessorValidate(t *testing.T) {
	if err := XScale600().Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := []*Processor{
		{Ceff: 1e-9, Rail: 12},                                           // no levels
		{Levels: []Level{{1e8, 1}}, Ceff: 0, Rail: 12},                   // zero Ceff
		{Levels: []Level{{1e8, 1}}, Ceff: 1e-9, Rail: 0},                 // zero rail
		{Levels: []Level{{1e8, 1}}, Ceff: 1e-9, Rail: 12, LeakPower: -1}, // negative leak
		{Levels: []Level{{2e8, 1}, {1e8, 1}}, Ceff: 1e-9, Rail: 12},      // not increasing
		{Levels: []Level{{1e8, 0}}, Ceff: 1e-9, Rail: 12},                // zero voltage
	}
	for k, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid processor accepted", k)
		}
	}
}

func TestCurrentScalesWithVSquaredF(t *testing.T) {
	p := XScale600()
	// Current must strictly increase with level (V and f both rise).
	prev := 0.0
	for k := range p.Levels {
		c := p.Current(k)
		if c <= prev {
			t.Fatalf("current not increasing at level %d: %v", k, c)
		}
		prev = c
	}
	// Check the physics at the top level: (5n·1.3²·600M + 0.25)/12.
	want := (5e-9*1.3*1.3*600e6 + 0.25) / 12
	if got := p.Current(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("top-level current = %v, want %v", got, want)
	}
}

func TestExecTimeAndFeasibility(t *testing.T) {
	p := XScale600()
	tk := task() // 3e8 cycles
	if got := p.ExecTime(tk, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("exec at 150 MHz = %v, want 2", got)
	}
	if got := p.ExecTime(tk, 4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("exec at 600 MHz = %v, want 0.5", got)
	}
	for k := range p.Levels {
		if !p.Feasible(tk, k) {
			t.Errorf("level %d should meet the 4 s deadline", k)
		}
	}
	tight := Task{Cycles: 3e8, Period: 0.6, Jobs: 1}
	if p.Feasible(tight, 0) {
		t.Error("150 MHz cannot meet a 0.6 s deadline for 3e8 cycles")
	}
	if !p.Feasible(tight, 4) {
		t.Error("600 MHz meets the 0.6 s deadline")
	}
}

func TestTraceGeneration(t *testing.T) {
	p := XScale600()
	tk := task()
	tr, err := p.Trace(tk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Fatalf("slots = %d", tr.Len())
	}
	exec := p.ExecTime(tk, 2)
	for _, s := range tr.Slots {
		if math.Abs(s.Active-exec) > 1e-12 || math.Abs(s.Idle-(4-exec)) > 1e-12 {
			t.Fatalf("slot = %+v", s)
		}
		if math.Abs(s.ActiveCurrent-p.Current(2)) > 1e-12 {
			t.Fatalf("current = %v", s.ActiveCurrent)
		}
	}
	if _, err := p.Trace(Task{Cycles: 3e8, Period: 0.6, Jobs: 1}, 0); err == nil {
		t.Error("infeasible level accepted")
	}
	if _, err := p.Trace(tk, 9); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := p.Trace(Task{}, 0); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestEnergyOptimalPrefersSlowWhenLeakageSmall(t *testing.T) {
	p := XScale600()
	p.LeakPower = 0 // no leakage: V² says run as slow as possible
	k := EnergyOptimalLevel(p, task(), 0.2)
	if k != 0 {
		t.Fatalf("energy-optimal level = %d, want 0 (slowest)", k)
	}
}

func TestEnergyOptimalRaceToIdleUnderHeavyLeak(t *testing.T) {
	p := XScale600()
	p.LeakPower = 20 // absurd leakage: finish fast and let the slack idle
	k := EnergyOptimalLevel(p, task(), 0.2)
	if k != len(p.Levels)-1 {
		t.Fatalf("energy-optimal level = %d, want fastest under heavy leakage", k)
	}
}

func TestEnergyOptimalInfeasible(t *testing.T) {
	p := XScale600()
	impossible := Task{Cycles: 1e12, Period: 0.1, Jobs: 1}
	if k := EnergyOptimalLevel(p, impossible, 0.2); k != -1 {
		t.Fatalf("infeasible task returned level %d", k)
	}
	if k := FuelOptimalLevel(fuelcell.PaperSystem(), p, impossible, 0.2); k != -1 {
		t.Fatalf("infeasible task returned fuel level %d", k)
	}
}

// TestFuelOptimalAtMostEnergyOptimal demonstrates the [10] thesis: under a
// load-following source with a declining-efficiency FC, the fuel-optimal
// speed never exceeds the energy-optimal one, and for workloads where the
// two objectives disagree it is strictly lower.
func TestFuelOptimalAtMostEnergyOptimal(t *testing.T) {
	sys := fuelcell.PaperSystem()
	p := XScale600()
	// Moderate leakage creates an interior energy optimum.
	p.LeakPower = 1.1
	tk := task()
	ke := EnergyOptimalLevel(p, tk, 0.2)
	kf := FuelOptimalLevel(sys, p, tk, 0.2)
	if ke < 0 || kf < 0 {
		t.Fatal("no feasible level")
	}
	if kf > ke {
		t.Fatalf("fuel-optimal level %d above energy-optimal %d", kf, ke)
	}
	// With a *constant*-efficiency system the two coincide: fuel is then
	// linear in charge.
	flatSys, err := fuelcell.NewSystem(12, 37.5, 0.01, 10, fuelcell.ConstantEfficiency{Value: 0.37})
	if err != nil {
		t.Fatal(err)
	}
	kflat := FuelOptimalLevel(flatSys, p, tk, 0.2)
	if kflat != ke {
		t.Fatalf("constant-η fuel optimum %d should equal energy optimum %d", kflat, ke)
	}
}

func TestChargeAndFuelPerPeriodConsistency(t *testing.T) {
	sys := fuelcell.PaperSystem()
	p := XScale600()
	tk := task()
	for k := range p.Levels {
		q := p.ChargePerPeriod(tk, k, 0.2)
		if q <= 0 {
			t.Fatalf("level %d: non-positive charge %v", k, q)
		}
		f := FuelPerPeriod(sys, p, tk, k, 0.2)
		if f <= 0 {
			t.Fatalf("level %d: non-positive fuel %v", k, f)
		}
		// Energy must be conserved: the chemical energy of the fuel
		// (ζ·Ifc·t = fuel·ζ joules) must exceed the delivered energy
		// (VF·charge-delivered ≥ VF·q only when not clamped, so compare
		// against the fuel's own delivered side: ζ·fuel ≥ VF·q is the
		// meaningful bound only for unclamped levels).
		if p.Current(k) >= sys.MinOutput && sys.VF*q > sys.Zeta*f {
			t.Fatalf("level %d: delivered energy %v exceeds fuel energy %v",
				k, sys.VF*q, sys.Zeta*f)
		}
	}
}
