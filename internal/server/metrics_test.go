package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition covers the cache, pool, and sim layers, is well-formed, and
// agrees with /v1/stats.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// One miss (simulates) + one hit.
	for i := 0; i < 2; i++ {
		if r, b := postRun(t, ts, quickSpec); r.StatusCode != 200 {
			t.Fatalf("run %d: %d %s", i, r.StatusCode, b)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	samples := parseExposition(t, body)
	for name, want := range map[string]float64{
		"fcdpm_cache_hits_total":            1,
		"fcdpm_cache_misses_total":          1,
		"fcdpm_sim_runs_total":              1,
		"fcdpm_server_runs_submitted_total": 1,
		"fcdpm_pool_tasks_done_total":       1,
		"fcdpm_pool_queue_depth":            0,
		"fcdpm_server_inflight_tasks":       0,
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// The sim layer reported real work and memo activity.
	if samples["fcdpm_sim_slots_total"] <= 0 {
		t.Errorf("sim slots total = %v, want > 0", samples["fcdpm_sim_slots_total"])
	}
	if samples["fcdpm_sim_memo_hits_total"]+samples["fcdpm_sim_memo_misses_total"] <= 0 {
		t.Error("memo hit/miss counters never moved")
	}
	// Per-endpoint latency histograms exist for the run route.
	if !strings.Contains(body, `fcdpm_http_request_seconds_count{endpoint="POST /v1/runs"} 2`) {
		t.Errorf("per-endpoint latency series missing or wrong:\n%s", grepLines(body, "fcdpm_http_request_seconds_count"))
	}
}

// parseExposition checks every line is HELP/TYPE or `name{labels} value`
// and returns the bare-name samples.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		var v float64
		if _, err := fmt.Sscanf(valStr, "%g", &v); err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			continue // labeled series checked by substring above
		}
		samples[name] = v
	}
	return samples
}

func grepLines(body, substr string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
