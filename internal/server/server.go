// Package server turns the simulator into a long-running service:
// an HTTP/JSON API that validates scenario specs, executes them on a
// shared bounded runner pool, streams per-run progress and supervisor
// audit events as NDJSON, and serves repeated scenarios byte-identically
// from a content-addressed result cache keyed by the canonical spec hash
// and the engine build — see DESIGN.md §8.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fcdpm/internal/cache"
	"fcdpm/internal/config"
	"fcdpm/internal/httpx"
	"fcdpm/internal/runner"
	"fcdpm/internal/version"
)

// Serving defaults.
const (
	// DefaultAddr binds loopback only; serving is an operator tool, not
	// an internet face.
	DefaultAddr = "127.0.0.1:8080"
	// DefaultCacheBytes bounds the in-memory result cache (64 MiB).
	DefaultCacheBytes = 64 << 20
	// DefaultDrainTimeout bounds how long shutdown waits for in-flight
	// runs before force-canceling them.
	DefaultDrainTimeout = 30 * time.Second
	// DefaultMaxBodyBytes bounds a request body (scenario specs are
	// small); an oversized body is refused with 413 before it is read.
	DefaultMaxBodyBytes = 8 << 20
	// maxSweepCells bounds one sweep request.
	maxSweepCells = 4096
	// drainRetryAfter is the Retry-After hint on 503s emitted while the
	// server drains: long enough for a restart, short enough that
	// clients reconnect promptly.
	drainRetryAfter = 5 * time.Second
	// shedRetryAfter is the Retry-After hint when the admission queue
	// sheds: overload is transient, probe again soon.
	shedRetryAfter = 1 * time.Second
)

// Options tunes the service. The zero value serves on DefaultAddr with
// a GOMAXPROCS-wide pool, a 64 MiB memory cache, and no disk tier.
type Options struct {
	// Addr is the listen address (default DefaultAddr).
	Addr string
	// Workers and Queue size the shared runner pool (runner.Options).
	Workers, Queue int
	// RunTimeout is the per-attempt simulation deadline; 0 means none.
	RunTimeout time.Duration
	// Retries re-runs retryable failures (default 0: fail fast).
	Retries int
	// DrainTimeout bounds graceful shutdown (default DefaultDrainTimeout).
	DrainTimeout time.Duration
	// CacheBytes bounds the memory result cache (default
	// DefaultCacheBytes); negative disables the memory tier.
	CacheBytes int64
	// CacheDir, when set, persists every cached report to disk with the
	// journal's fsync+atomic-rename discipline, surviving restarts.
	CacheDir string
	// MaxBodyBytes bounds each request body (default
	// DefaultMaxBodyBytes); oversized bodies get 413.
	MaxBodyBytes int64
	// RetainJobs bounds how many completed jobs stay queryable (default
	// 512).
	RetainJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiler exposes goroutine stacks and heap contents,
	// so it is opt-in (`fcdpm serve -pprof`) and belongs behind the same
	// trust boundary as the rest of the service.
	EnablePprof bool
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = DefaultAddr
	}
	// Mirror the pool's sizing defaults so /v1/stats reports real values.
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server is the simulation service: a shared runner pool, a job
// registry, and the content-addressed result cache behind an
// http.Handler.
type Server struct {
	opts     Options
	engine   string
	started  time.Time
	cache    *cache.Store
	reg      *registry
	pool     *runner.Pool[struct{}]
	poolStop context.CancelFunc
	mux      *http.ServeMux

	// metrics is the unified obs registry: /metrics, /v1/stats, the sim
	// configs, and the pool all record into and read from it.
	metrics *serverMetrics

	// taskJobs maps in-flight pool task IDs to their taskRef.
	taskJobs sync.Map

	draining atomic.Bool

	closeOnce sync.Once
	closeErr  error
}

// New builds a Server. The pool gets its own context — deliberately not
// the serve context — so that shutdown *drains* in-flight runs instead
// of canceling them; Close force-cancels only after DrainTimeout.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	metrics := newServerMetrics(opts.Logf)
	store, err := cache.New(opts.CacheBytes, opts.CacheDir, metrics.registry)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		engine:  version.Engine(),
		started: time.Now(),
		cache:   store,
		reg:     newRegistry(opts.RetainJobs),
		metrics: metrics,
	}
	metrics.registry.GaugeFunc("fcdpm_server_jobs_active", "Jobs queued or running.", func() float64 {
		active, _ := s.reg.counts()
		return float64(active)
	})
	metrics.registry.GaugeFunc("fcdpm_server_jobs_retained", "Completed jobs still queryable.", func() float64 {
		_, retained := s.reg.counts()
		return float64(retained)
	})
	poolCtx, cancel := context.WithCancel(context.Background())
	s.poolStop = cancel
	pool, err := runner.NewPool[struct{}](poolCtx, runner.Options{
		Workers: opts.Workers, Queue: opts.Queue,
		Timeout: opts.RunTimeout, Retries: opts.Retries,
		ShedOverflow: true, StreamOutcomes: true,
		OnEvent: s.onTaskEvent,
		Metrics: metrics.pool,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	s.pool = pool
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	m := s.metrics
	s.mux.HandleFunc("POST /v1/runs", m.endpoint("POST /v1/runs", s.handleRunPost))
	s.mux.HandleFunc("GET /v1/runs/{id}", m.endpoint("GET /v1/runs/{id}", s.handleJobGet))
	s.mux.HandleFunc("GET /v1/runs/{id}/events", m.endpoint("GET /v1/runs/{id}/events", s.handleJobEvents))
	s.mux.HandleFunc("POST /v1/sweeps", m.endpoint("POST /v1/sweeps", s.handleSweepPost))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", m.endpoint("GET /v1/sweeps/{id}", s.handleJobGet))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", m.endpoint("GET /v1/sweeps/{id}/events", s.handleJobEvents))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", m.endpoint("GET /v1/stats", s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.EnablePprof {
		// Mounted explicitly rather than via the package's init side
		// effect on http.DefaultServeMux, which this server never uses.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// The JSON conventions live in internal/httpx, shared with the sweep
// dispatcher; local names keep the handlers terse.
var (
	writeJSON = httpx.WriteJSON
	writeBody = httpx.WriteBody
	writeErr  = httpx.WriteErr
)

// writeJobErr renders a job failure, attaching the Retry-After hint on
// 503s so client backoff is protocol-driven.
func writeJobErr(w http.ResponseWriter, code int, retryAfter time.Duration, format string, args ...any) {
	if code == http.StatusServiceUnavailable && retryAfter > 0 {
		httpx.WriteUnavailable(w, retryAfter, format, args...)
		return
	}
	writeErr(w, code, format, args...)
}

// decodeSpec reads and validates one scenario spec from the bounded
// body; an oversized body is a 413, a malformed one a 400.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (*config.Scenario, bool) {
	spec, err := config.LoadValidated(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		if httpx.WriteBodyLimit(w, err) {
			return nil, false
		}
		writeErr(w, 400, "invalid scenario: %v", err)
		return nil, false
	}
	return spec, true
}

// handleRunPost accepts one scenario. Cache hit → the stored bytes,
// verbatim. Miss → coalesce with any identical in-flight run or submit
// a fresh pool task; respond when it resolves (or immediately with 202
// under ?async=1).
func (s *Server) handleRunPost(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	key, err := spec.CacheKey(s.engine)
	if err != nil {
		writeErr(w, 400, "invalid scenario: %v", err)
		return
	}
	w.Header().Set("X-Fcdpm-Key", key)
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("X-Fcdpm-Cache", "hit")
		writeBody(w, 200, body)
		return
	}
	if s.draining.Load() {
		httpx.WriteUnavailable(w, drainRetryAfter, "draining")
		return
	}
	name := spec.Name
	if name == "" {
		name = "run"
	}
	j, coalesced := s.reg.leaseRun(key, name)
	if coalesced {
		s.metrics.runsCoalesced.Inc()
	} else {
		s.metrics.runsSubmitted.Inc()
		j.events.append(Event{Kind: "accepted", Job: j.id, Detail: "key " + key})
		s.submitRun(j, taskRef{job: j, cell: -1}, spec, key, name)
	}
	if isAsync(r) {
		// Mirror the sync path's X-Fcdpm-Cache taxonomy so async clients
		// (devicesim) can count coalesced admissions without waiting.
		tag := "miss"
		if coalesced {
			tag = "coalesced"
		}
		w.Header().Set("X-Fcdpm-Cache", tag)
		writeJSON(w, 202, map[string]string{
			"id": j.id, "key": key, "status": string(jobQueued),
			"events": "/v1/runs/" + j.id + "/events",
			"cache":  tag,
		})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeErr(w, 499, "client went away")
		return
	}
	s.writeOutcome(w, j, coalesced)
}

// submitRun registers the task→job route and hands the pool the work.
// Shed/interrupted submissions resolve through onTaskEvent; only a
// closed pool refuses without an event, handled here.
func (s *Server) submitRun(j *job, ref taskRef, spec *config.Scenario, key, name string) {
	id := j.id
	if ref.cell >= 0 {
		id = fmt.Sprintf("%s/%04d", j.id, ref.cell)
	}
	s.taskJobs.Store(id, ref)
	s.metrics.inflight.Add(1)
	err := s.pool.Submit(runner.Task[struct{}]{
		ID:       id,
		Scenario: key,
		Run:      s.runTask(j, ref, spec, key, name),
	})
	if errors.Is(err, runner.ErrClosed) {
		s.taskJobs.Delete(id)
		s.metrics.inflight.Add(-1)
		if ref.cell >= 0 {
			s.cellDone(j, ref.cell, runner.StatusInterrupted, false, "draining")
			return
		}
		s.metrics.runsFailed.Inc()
		j.setRetryAfter(drainRetryAfter)
		j.finish(jobFailed, nil, "draining", 503, false)
		s.reg.complete(j)
	}
}

// maxBatchLanes caps how many sweep cells one batched pool task holds:
// wider same-trace groups split so a single task never monopolizes a
// worker, and lane widths stay inside the obs.LaneBuckets range.
const maxBatchLanes = 64

// batchChunks partitions cache-miss sweep cells into batch chunks:
// cells whose normalized trace specs agree share one BatchRunner walk
// (value-identical traces batch regardless of spelling), chunked to
// maxBatchLanes. A cell whose spec fails to normalize falls back to a
// scalar chunk of its own. First-seen order is preserved both across
// and within groups, so cell resolution order stays deterministic.
func batchChunks(specs []*config.Scenario, misses []int) [][]int {
	byTrace := make(map[string][]int)
	var order []string
	for _, i := range misses {
		k := fmt.Sprintf("cell-%d", i) // fallback: private group
		if n, err := specs[i].Normalized(); err == nil {
			if tj, err := json.Marshal(n.Trace); err == nil {
				k = "trace:" + string(tj)
			}
		}
		if _, ok := byTrace[k]; !ok {
			order = append(order, k)
		}
		byTrace[k] = append(byTrace[k], i)
	}
	var chunks [][]int
	for _, k := range order {
		idxs := byTrace[k]
		for st := 0; st < len(idxs); st += maxBatchLanes {
			chunks = append(chunks, idxs[st:min(st+maxBatchLanes, len(idxs))])
		}
	}
	return chunks
}

// submitBatch hands the pool one batched sweep chunk. The task is
// routed like any cell task; on a closed pool every covered cell
// resolves interrupted, mirroring submitRun's drain path.
func (s *Server) submitBatch(j *job, cells []int, specs []*config.Scenario, keys []string) {
	ref := taskRef{job: j, cell: -1, batch: &batchRef{
		cells:    cells,
		outcomes: make([]laneOutcome, len(cells)),
	}}
	id := fmt.Sprintf("%s/batch-%04d", j.id, cells[0])
	s.taskJobs.Store(id, ref)
	s.metrics.inflight.Add(1)
	err := s.pool.Submit(runner.Task[struct{}]{
		ID:       id,
		Scenario: keys[cells[0]],
		Run:      s.batchTask(j, ref, specs, keys),
	})
	if errors.Is(err, runner.ErrClosed) {
		s.taskJobs.Delete(id)
		s.metrics.inflight.Add(-1)
		for _, ci := range cells {
			s.cellDone(j, ci, runner.StatusInterrupted, false, "draining")
		}
	}
}

// writeOutcome renders a resolved run job.
func (s *Server) writeOutcome(w http.ResponseWriter, j *job, coalesced bool) {
	status, body, errMsg, code := j.outcome()
	if status == jobDone {
		tag := "miss"
		if coalesced {
			tag = "coalesced"
		}
		w.Header().Set("X-Fcdpm-Cache", tag)
		writeBody(w, code, body)
		return
	}
	writeJobErr(w, code, j.retryAfterHint(), "%s", errMsg)
}

func isAsync(r *http.Request) bool {
	v := r.URL.Query().Get("async")
	return v == "1" || v == "true"
}

// sweepRequest is the POST /v1/sweeps body.
type sweepRequest struct {
	Name      string            `json:"name"`
	Scenarios []json.RawMessage `json:"scenarios"`
}

// handleSweepPost validates every cell up front (a sweep with a bad
// cell is rejected whole), resolves cached cells immediately, submits
// the rest, and returns 202 — sweep results are fetched by ID or
// streamed.
func (s *Server) handleSweepPost(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		if httpx.WriteBodyLimit(w, err) {
			return
		}
		writeErr(w, 400, "invalid sweep request: %v", err)
		return
	}
	if len(req.Scenarios) == 0 {
		writeErr(w, 400, "sweep has no scenarios")
		return
	}
	if len(req.Scenarios) > maxSweepCells {
		writeErr(w, 400, "sweep exceeds %d cells", maxSweepCells)
		return
	}
	specs := make([]*config.Scenario, len(req.Scenarios))
	keys := make([]string, len(req.Scenarios))
	for i, raw := range req.Scenarios {
		spec, err := config.LoadValidated(bytes.NewReader(raw))
		if err != nil {
			writeErr(w, 400, "scenario %d: %v", i, err)
			return
		}
		key, err := spec.CacheKey(s.engine)
		if err != nil {
			writeErr(w, 400, "scenario %d: %v", i, err)
			return
		}
		specs[i], keys[i] = spec, key
	}
	if s.draining.Load() {
		httpx.WriteUnavailable(w, drainRetryAfter, "draining")
		return
	}
	name := req.Name
	if name == "" {
		name = "sweep"
	}
	j := s.reg.newJob(jobSweep, "", name)
	j.cells = make([]cellState, len(specs))
	j.remaining = len(specs)
	for i, spec := range specs {
		cn := spec.Name
		if cn == "" {
			cn = fmt.Sprintf("cell-%04d", i)
		}
		j.cells[i] = cellState{Name: cn, Key: keys[i], Status: "queued"}
	}
	j.events.append(Event{
		Kind: "accepted", Job: j.id,
		Detail: fmt.Sprintf("%d cells", len(specs)),
	})
	misses := make([]int, 0, len(specs))
	for i := range specs {
		if _, ok := s.cache.Get(keys[i]); ok {
			s.cellDone(j, i, runner.StatusDone, true, "")
			continue
		}
		s.metrics.runsSubmitted.Inc()
		misses = append(misses, i)
	}
	// Cache-miss cells that share a workload trace batch into one
	// BatchRunner pool task each (coalesced siblings collapse via their
	// lane keys); a cell with a trace of its own keeps the scalar path.
	for _, chunk := range batchChunks(specs, misses) {
		if len(chunk) == 1 {
			i := chunk[0]
			s.submitRun(j, taskRef{job: j, cell: i}, specs[i], keys[i], j.cells[i].Name)
			continue
		}
		s.submitBatch(j, chunk, specs, keys)
	}
	writeJSON(w, 202, map[string]any{
		"id": j.id, "cells": len(keys), "status": string(jobQueued),
		"events": "/v1/sweeps/" + j.id + "/events",
	})
}

// handleJobGet reports a job: the stable report body once done, a
// status document while pending, the failure otherwise.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, 404, "unknown job")
		return
	}
	select {
	case <-j.done:
	default:
		st := map[string]any{"id": j.id, "status": string(jobQueued)}
		if j.kind == jobSweep {
			j.mu.Lock()
			st["remaining"] = j.remaining
			st["cells"] = len(j.cells)
			j.mu.Unlock()
		}
		writeJSON(w, 200, st)
		return
	}
	if j.kind == jobRun && j.key != "" {
		w.Header().Set("X-Fcdpm-Key", j.key)
	}
	status, body, errMsg, code := j.outcome()
	if body != nil {
		writeBody(w, code, body)
		return
	}
	writeJobErr(w, code, j.retryAfterHint(), "%s: %s", status, errMsg)
}

// handleJobEvents tails the job's event log as NDJSON until the job
// resolves or the client disconnects. Flushes per line, so progress is
// observable live.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.reg.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, 404, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(200)
	fl, _ := w.(http.Flusher)
	for i := 0; ; i++ {
		line, ok := j.events.next(r.Context(), i)
		if !ok {
			return
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if fl != nil {
			fl.Flush()
		}
	}
}

// healthz is the liveness document: build identity and uptime.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, 200, map[string]any{
		"status":  status,
		"engine":  s.engine,
		"build":   version.Get(),
		"uptimeS": time.Since(s.started).Seconds(),
	})
}

// statsPayload is the /v1/stats document.
type statsPayload struct {
	Pool  poolStatsDoc  `json:"pool"`
	Runs  runStatsDoc   `json:"runs"`
	Cache cache.Stats   `json:"cache"`
	Jobs  jobStatsDoc   `json:"jobs"`
	Perf  perfStatsDoc  `json:"perf"`
	Batch batchStatsDoc `json:"batch"`
}

// batchStatsDoc snapshots the batched-execution instruments: how many
// BatchRunner walks served sweep chunks, how wide they were, and how
// many per-slot plan+integrate executions the lane grouping amortized
// away (the fcdpm_sim_batch_lanes / _plan_group_hits series /metrics
// exports).
type batchStatsDoc struct {
	Batches       int64   `json:"batches"`
	LanesTotal    int64   `json:"lanesTotal"`
	AvgLanes      float64 `json:"avgLanes"`
	PlanGroupHits int64   `json:"planGroupHits"`
}

// perfStatsDoc aggregates simulation wall time and slot throughput over
// every completed (non-cached) run since the server started.
type perfStatsDoc struct {
	Runs        int64   `json:"runs"`
	Slots       int64   `json:"slots"`
	WallSeconds float64 `json:"wallSeconds"`
	// AvgRunMs is the mean simulation wall time per run.
	AvgRunMs float64 `json:"avgRunMs"`
	// SlotsPerSec is the aggregate simulated-slot throughput.
	SlotsPerSec float64 `json:"slotsPerSec"`
	// RunP50Ms/P95Ms/P99Ms are bounded-bucket quantile estimates of the
	// per-run simulation wall time (obs.Histogram.Quantiles over the
	// same fcdpm_sim_run_seconds series /metrics exports).
	RunP50Ms float64 `json:"runP50Ms"`
	RunP95Ms float64 `json:"runP95Ms"`
	RunP99Ms float64 `json:"runP99Ms"`
}

type poolStatsDoc struct {
	Workers  int   `json:"workers"`
	Queue    int   `json:"queue"`
	Inflight int64 `json:"inflight"`
}

type runStatsDoc struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Coalesced int64 `json:"coalesced"`
}

type jobStatsDoc struct {
	Active   int `json:"active"`
	Retained int `json:"retained"`
}

// handleStats renders the JSON stats document. Every number is read
// from the obs registry's instruments — the same source /metrics
// renders — so the two views cannot drift.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	active, retained := s.reg.counts()
	m := s.metrics
	writeJSON(w, 200, statsPayload{
		Pool: poolStatsDoc{
			Workers:  s.opts.Workers,
			Queue:    s.opts.Queue,
			Inflight: int64(m.inflight.Value()),
		},
		Runs: runStatsDoc{
			Submitted: int64(m.runsSubmitted.Value()),
			Done:      int64(m.runsDone.Value()),
			Failed:    int64(m.runsFailed.Value()),
			Shed:      int64(m.runsShed.Value()),
			Coalesced: int64(m.runsCoalesced.Value()),
		},
		Cache: s.cache.Stats(),
		Jobs:  jobStatsDoc{Active: active, Retained: retained},
		Perf:  s.perfStats(),
		Batch: s.batchStats(),
	})
}

// batchStats snapshots the BatchRunner instrument set.
func (s *Server) batchStats() batchStatsDoc {
	b := s.metrics.batch
	doc := batchStatsDoc{
		Batches:       int64(b.Batches.Value()),
		LanesTotal:    int64(b.Lanes.Sum()),
		PlanGroupHits: int64(b.PlanGroupHits.Value()),
	}
	if doc.Batches > 0 {
		doc.AvgLanes = float64(doc.LanesTotal) / float64(doc.Batches)
	}
	return doc
}

// perfStats snapshots the simulation-perf instruments. The loads are
// not mutually atomic; under concurrent runs the ratios are approximate,
// which is fine for an operational gauge.
func (s *Server) perfStats() perfStatsDoc {
	sim := s.metrics.sim
	doc := perfStatsDoc{
		Runs:        int64(sim.Runs.Value()),
		Slots:       int64(sim.Slots.Value()),
		WallSeconds: sim.RunSeconds.Sum(),
	}
	if doc.Runs > 0 {
		doc.AvgRunMs = doc.WallSeconds * 1e3 / float64(doc.Runs)
	}
	if doc.WallSeconds > 0 {
		doc.SlotsPerSec = float64(doc.Slots) / doc.WallSeconds
	}
	qs := sim.RunSeconds.Quantiles(0.5, 0.95, 0.99)
	doc.RunP50Ms, doc.RunP95Ms, doc.RunP99Ms = qs[0]*1e3, qs[1]*1e3, qs[2]*1e3
	return doc
}

// Close drains the service: admission stops, in-flight runs finish
// (bounded by DrainTimeout, then force-canceled). A forced drain
// returns an error wrapping runner.ErrInterrupted so callers keep the
// exit-code discipline (3: interrupted).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		done := make(chan error, 1)
		go func() {
			_, err := s.pool.Drain()
			done <- err
		}()
		var err error
		select {
		case err = <-done:
		case <-time.After(s.opts.DrainTimeout):
			s.opts.Logf("fcdpm serve: drain timeout after %s, canceling in-flight runs", s.opts.DrainTimeout)
			s.poolStop()
			err = <-done
		}
		s.poolStop()
		if err != nil {
			s.closeErr = fmt.Errorf("server: drain: %w", err)
		}
	})
	return s.closeErr
}

// Serve runs the service until ctx is canceled (SIGTERM/SIGINT in the
// CLI), then shuts down gracefully: the listener closes, in-flight
// requests and runs drain, the cache's disk tier is already durable. A
// clean drain returns nil; a forced one wraps runner.ErrInterrupted.
func Serve(ctx context.Context, opts Options) error {
	s, err := New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		s.Close()
		return fmt.Errorf("server: listen: %w", err)
	}
	s.opts.Logf("fcdpm serve: listening on http://%s (engine %s)", ln.Addr(), s.engine)
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.Close()
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	s.opts.Logf("fcdpm serve: draining (admission closed, in-flight runs finishing)")
	// Pool drain and HTTP shutdown proceed together: handlers blocked on
	// pending jobs resolve as workers finish, which lets Shutdown return.
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Close() }()
	shutCtx, cancel := context.WithTimeout(context.Background(),
		s.opts.DrainTimeout+5*time.Second)
	defer cancel()
	herr := hs.Shutdown(shutCtx)
	cerr := <-drainErr
	if cerr != nil {
		return cerr
	}
	if herr != nil {
		return fmt.Errorf("server: shutdown forced: %w (%v)", runner.ErrInterrupted, herr)
	}
	s.opts.Logf("fcdpm serve: drained cleanly")
	return nil
}
