package server

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestEventLogTailAndClose(t *testing.T) {
	l := newEventLog()
	got := make(chan Event, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			line, ok := l.next(context.Background(), i)
			if !ok {
				close(got)
				return
			}
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				t.Errorf("bad line: %v", err)
				return
			}
			got <- e
		}
	}()
	l.append(Event{Kind: "a", Job: "j"})
	l.append(Event{Kind: "b", Job: "j"})
	l.close()
	wg.Wait()
	var kinds []string
	for e := range got {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "a" || kinds[1] != "b" {
		t.Fatalf("tailed %v", kinds)
	}
	// Appends after close are dropped, and snapshots see the final state.
	l.append(Event{Kind: "late"})
	if n := len(l.snapshot()); n != 2 {
		t.Fatalf("post-close append leaked: %d lines", n)
	}
}

func TestEventLogContextCancelUnblocks(t *testing.T) {
	l := newEventLog()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := l.next(ctx, 0)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled reader got a line")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled reader stayed blocked")
	}
}
