package server

import (
	"context"
	"sync"
	"time"

	"fcdpm/internal/report"
	"fcdpm/internal/stream"
)

// Event is one NDJSON line of a job's progress stream: submission,
// per-attempt starts, replayed simulator audit events, per-cell sweep
// progress, and the final resolution. Seq is a dense 0-based index, so a
// client that reconnects can detect gaps; Ts is wall time.
type Event struct {
	Seq  int    `json:"seq"`
	Ts   string `json:"ts"`
	Kind string `json:"kind"`
	// Job is the owning job ID; Cell names the sweep cell, when any.
	Job  string `json:"job"`
	Cell string `json:"cell,omitempty"`
	// Attempt is the 1-based engine attempt for "attempt" events.
	Attempt int `json:"attempt,omitempty"`
	// Status is the resolution for "cell" and "resolved" events.
	Status string `json:"status,omitempty"`
	// Cached marks results served from the content-addressed cache.
	Cached bool `json:"cached,omitempty"`
	// T is the simulated time of a replayed audit event, seconds.
	T float64 `json:"t,omitempty"`
	// Detail carries the human-readable remainder.
	Detail string `json:"detail,omitempty"`
}

// eventLog marshals Events onto a stream.Log: writers append, any number
// of readers tail concurrently until the log closes. The mutex keeps Seq
// dense under concurrent appends.
type eventLog struct {
	mu  sync.Mutex
	log *stream.Log
}

func newEventLog() *eventLog {
	return &eventLog{log: stream.NewLog()}
}

// append marshals e (stamping Seq and Ts) and wakes every tailing
// reader. Appends after close are dropped.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.log.Len()
	e.Ts = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := report.StableJSON(e)
	if err != nil {
		// An Event is always encodable; guard anyway so a future field
		// cannot wedge the stream.
		return
	}
	l.log.Append(line)
}

// close ends the stream: tailing readers drain what is buffered and
// return.
func (l *eventLog) close() { l.log.Close() }

// next returns line i, blocking until it exists, the log closes, or ctx
// is done. The second result is false when no more lines will come.
func (l *eventLog) next(ctx context.Context, i int) ([]byte, bool) {
	return l.log.Next(ctx, i)
}

// snapshot returns the lines buffered so far, for non-blocking reads.
func (l *eventLog) snapshot() [][]byte { return l.log.Snapshot() }
