package server

import (
	"context"
	"sync"
	"time"

	"fcdpm/internal/report"
)

// Event is one NDJSON line of a job's progress stream: submission,
// per-attempt starts, replayed simulator audit events, per-cell sweep
// progress, and the final resolution. Seq is a dense 0-based index, so a
// client that reconnects can detect gaps; Ts is wall time.
type Event struct {
	Seq  int    `json:"seq"`
	Ts   string `json:"ts"`
	Kind string `json:"kind"`
	// Job is the owning job ID; Cell names the sweep cell, when any.
	Job  string `json:"job"`
	Cell string `json:"cell,omitempty"`
	// Attempt is the 1-based engine attempt for "attempt" events.
	Attempt int `json:"attempt,omitempty"`
	// Status is the resolution for "cell" and "resolved" events.
	Status string `json:"status,omitempty"`
	// Cached marks results served from the content-addressed cache.
	Cached bool `json:"cached,omitempty"`
	// T is the simulated time of a replayed audit event, seconds.
	T float64 `json:"t,omitempty"`
	// Detail carries the human-readable remainder.
	Detail string `json:"detail,omitempty"`
}

// eventLog is an append-only, broadcast-on-append line log. Writers
// append marshaled events; any number of readers tail it concurrently,
// each at its own cursor, blocking for new lines until the log closes.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  [][]byte
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append marshals e (stamping Seq and Ts), stores the line, and wakes
// every tailing reader. Appends after close are dropped.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	e.Seq = len(l.lines)
	e.Ts = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := report.StableJSON(e)
	if err != nil {
		// An Event is always encodable; guard anyway so a future field
		// cannot wedge the stream.
		return
	}
	l.lines = append(l.lines, line)
	l.cond.Broadcast()
}

// close ends the stream: tailing readers drain what is buffered and
// return.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// next returns line i, blocking until it exists, the log closes, or ctx
// is done. The second result is false when no more lines will come.
func (l *eventLog) next(ctx context.Context, i int) ([]byte, bool) {
	// A context expiry must wake the cond-waiters, who cannot select.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.cond.Broadcast()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if i < len(l.lines) {
			return l.lines[i], true
		}
		if l.closed || ctx.Err() != nil {
			return nil, false
		}
		l.cond.Wait()
	}
}

// snapshot returns the lines buffered so far, for non-blocking reads.
func (l *eventLog) snapshot() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.lines))
	copy(out, l.lines)
	return out
}
