package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fcdpm/internal/httpx"
)

// quickSpec is a scenario small enough to simulate in milliseconds.
const quickSpec = `{"name":"quick","trace":{"kind":"synthetic","seed":7,"duration":120},
	"policy":{"kind":"fcdpm"}}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return resp
}

// TestRunCacheByteIdentical is the tentpole acceptance check: the second
// POST of an equivalent spec returns the stored report byte-for-byte
// with zero re-simulation, and /v1/stats records the hit.
func TestRunCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	r1, b1 := postRun(t, ts, quickSpec)
	if r1.StatusCode != 200 {
		t.Fatalf("first run: %d %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Fcdpm-Cache"); got != "miss" {
		t.Fatalf("first run cache header = %q, want miss", got)
	}
	key := r1.Header.Get("X-Fcdpm-Key")
	if len(key) != 64 {
		t.Fatalf("content address %q is not a sha-256 hex", key)
	}

	// Spell the same simulation differently: explicit default device
	// block and shuffled casing must hit the same address.
	equiv := `{"name":"quick","policy":{"kind":"FCDPM"},
		"trace":{"kind":"Synthetic","seed":7,"duration":120},
		"dpm":{"mode":"predictive"}}`
	r2, b2 := postRun(t, ts, equiv)
	if r2.StatusCode != 200 {
		t.Fatalf("second run: %d %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Fcdpm-Cache"); got != "hit" {
		t.Fatalf("second run cache header = %q, want hit", got)
	}
	if r2.Header.Get("X-Fcdpm-Key") != key {
		t.Fatalf("equivalent spec got key %q, want %q", r2.Header.Get("X-Fcdpm-Key"), key)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached report not byte-identical:\n%s\nvs\n%s", b1, b2)
	}

	var stats statsPayload
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Cache.Hits != 1 || stats.Cache.Misses == 0 {
		t.Fatalf("cache stats = %+v, want exactly one hit", stats.Cache)
	}
	if stats.Runs.Done != 1 || stats.Runs.Submitted != 1 {
		t.Fatalf("run stats = %+v, want one submitted+done", stats.Runs)
	}

	// The report carries the content address and engine tag.
	var rep map[string]any
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep["key"] != key {
		t.Fatalf("report key %v != header %s", rep["key"], key)
	}
	if rep["engine"] == "" || rep["engine"] == nil {
		t.Fatal("report missing engine tag")
	}
}

func TestRunInvalidSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		`not json`,
		`{"unknown":1}`,
		`{"predict":{"rho":1.5}}`,
	} {
		resp, b := postRun(t, ts, body)
		if resp.StatusCode != 400 {
			t.Errorf("POST %s: %d %s, want 400", body, resp.StatusCode, b)
		}
		var e httpx.Error
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: body %s is not an apiError", body, b)
		}
	}
}

func TestRunAsyncAndEvents(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/runs?async=1", "application/json",
		strings.NewReader(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID     string `json:"id"`
		Events string `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 || acc.ID == "" {
		t.Fatalf("async accept: %d %+v", resp.StatusCode, acc)
	}

	// The NDJSON stream ends with the terminal "resolved" event.
	er, err := http.Get(ts.URL + acc.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(er.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 3 {
		t.Fatalf("want accepted+attempt+resolved, got %+v", events)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Kind != "resolved" || last.Status != string(jobDone) {
		t.Fatalf("terminal event %+v", last)
	}

	// The job endpoint now serves the report.
	jr, err := http.Get(ts.URL + "/v1/runs/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != 200 {
		t.Fatalf("job get: %d", jr.StatusCode)
	}
}

func TestRunCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	// A slow-ish spec keeps the first run in flight while the rest arrive.
	spec := `{"trace":{"kind":"camcorder"},"policy":{"kind":"fcdpm"}}`
	const n = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i], codes[i] = buf.Bytes(), resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body diverged", i)
		}
	}
	// At most a couple of actual simulations ran (hit-after-done plus
	// coalesced-in-flight cover the rest); never n.
	if got := int64(s.metrics.runsSubmitted.Value()); got >= n {
		t.Fatalf("submitted %d simulations for %d identical requests", got, n)
	}
}

func TestSweepWithCachedCells(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Prime the cache with one cell.
	if r, b := postRun(t, ts, quickSpec); r.StatusCode != 200 {
		t.Fatalf("prime: %d %s", r.StatusCode, b)
	}
	sweep := fmt.Sprintf(`{"name":"pair","scenarios":[%s,
		{"name":"other","trace":{"kind":"synthetic","seed":9,"duration":120}}]}`, quickSpec)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 || acc.Cells != 2 {
		t.Fatalf("sweep accept: %d %+v", resp.StatusCode, acc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var sr sweepReport
		resp := getJSON(t, ts, "/v1/sweeps/"+acc.ID, &sr)
		if resp.StatusCode == 200 && len(sr.Cells) == 2 {
			if sr.Done != 2 || sr.Cached != 1 {
				t.Fatalf("sweep report %+v, want 2 done / 1 cached", sr)
			}
			if sr.Cells[0].Name != "quick" || !sr.Cells[0].Cached {
				t.Fatalf("primed cell not served from cache: %+v", sr.Cells[0])
			}
			if sr.Cells[1].Cached {
				t.Fatalf("cold cell claims cached: %+v", sr.Cells[1])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", sr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSweepRejectsBadCell(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"scenarios":[{"trace":{"kind":"synthetic"}},{"predict":{"rho":9}}]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad sweep: %d, want 400", resp.StatusCode)
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, p := range []string{"/v1/runs/nope", "/v1/runs/nope/events", "/v1/sweeps/nope"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("GET %s: %d, want 404", p, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var h struct {
		Status string `json:"status"`
		Engine string `json:"engine"`
		Build  struct {
			Go string `json:"go"`
		} `json:"build"`
	}
	resp := getJSON(t, ts, "/healthz", &h)
	if resp.StatusCode != 200 || h.Status != "ok" || h.Engine == "" || h.Build.Go == "" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}
}

// TestDiskCacheSurvivesRestart exercises the disk tier: a new server
// over the same cache dir serves the first request as a (disk) hit.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Options{CacheDir: dir})
	r1, b1 := postRun(t, ts1, quickSpec)
	if r1.StatusCode != 200 {
		t.Fatalf("first server run: %d", r1.StatusCode)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Options{CacheDir: dir})
	r2, b2 := postRun(t, ts2, quickSpec)
	if r2.StatusCode != 200 || r2.Header.Get("X-Fcdpm-Cache") != "hit" {
		t.Fatalf("restarted server: %d cache=%s", r2.StatusCode, r2.Header.Get("X-Fcdpm-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("disk-tier report not byte-identical across restart")
	}
	if st := s2.cache.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
	// The stored file matches the journal discipline: one file per key.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir files = %v (%v)", files, err)
	}
}

// TestGracefulDrain covers Serve end to end: requests in flight when the
// context cancels still complete, the listener closes, and the drain is
// clean (nil error → exit code 0).
func TestGracefulDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addr := "127.0.0.1:0"
	// Serve doesn't report its bound port; use a fixed loopback port via
	// a pre-grabbed listener trick: instead run New+httptest for requests
	// and exercise Serve's drain path with no traffic separately.
	_ = addr

	done := make(chan error, 1)
	go func() { done <- Serve(ctx, Options{Addr: "127.0.0.1:0"}) }()
	// Give the listener a beat, then trigger shutdown.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain")
	}
}

// TestDrainRefusesNewWork verifies that a draining server sheds new
// admissions with 503 while completing what it accepted.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if r, _ := postRun(t, ts, quickSpec); r.StatusCode != 200 {
		t.Fatalf("warm-up run failed: %d", r.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, b := postRun(t, ts, `{"trace":{"kind":"synthetic","seed":11,"duration":60}}`)
	if resp.StatusCode != 503 {
		t.Fatalf("post-drain admission: %d %s, want 503", resp.StatusCode, b)
	}
	// Cached content still serves.
	resp2, _ := postRun(t, ts, quickSpec)
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Fcdpm-Cache") != "hit" {
		t.Fatalf("post-drain cache hit: %d cache=%s", resp2.StatusCode, resp2.Header.Get("X-Fcdpm-Cache"))
	}
}

// TestConcurrentMixedLoad hammers the handlers from many goroutines —
// the -race run of this test is the concurrency-safety acceptance gate.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				spec := fmt.Sprintf(
					`{"trace":{"kind":"synthetic","seed":%d,"duration":60}}`, (g+i)%3+1)
				resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
					strings.NewReader(spec))
				if err == nil {
					resp.Body.Close()
				}
				if r, err := http.Get(ts.URL + "/v1/stats"); err == nil {
					r.Body.Close()
				}
				if r, err := http.Get(ts.URL + "/healthz"); err == nil {
					r.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	var stats statsPayload
	getJSON(t, ts, "/v1/stats", &stats)
	total := stats.Runs.Done + stats.Runs.Failed + stats.Runs.Shed
	if total+stats.Cache.Hits+stats.Runs.Coalesced < 40 {
		t.Fatalf("accounting lost requests: %+v", stats)
	}
}

// TestPprofGating: the profiler is absent by default and mounted under
// /debug/pprof/ only with EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Options{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof on: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
}

// TestStatsPerfSection: a completed simulation shows up in the perf
// gauges (wall time, slots, throughput), and a cache hit does not.
func TestStatsPerfSection(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if r, _ := postRun(t, ts, quickSpec); r.StatusCode != 200 {
		t.Fatalf("run: %d", r.StatusCode)
	}
	var st struct {
		Perf struct {
			Runs        int64   `json:"runs"`
			Slots       int64   `json:"slots"`
			WallSeconds float64 `json:"wallSeconds"`
			AvgRunMs    float64 `json:"avgRunMs"`
			SlotsPerSec float64 `json:"slotsPerSec"`
			RunP50Ms    float64 `json:"runP50Ms"`
			RunP95Ms    float64 `json:"runP95Ms"`
			RunP99Ms    float64 `json:"runP99Ms"`
		} `json:"perf"`
	}
	getJSON(t, ts, "/v1/stats", &st)
	if st.Perf.Runs != 1 || st.Perf.Slots <= 0 || st.Perf.WallSeconds <= 0 || st.Perf.SlotsPerSec <= 0 {
		t.Fatalf("perf after one run: %+v", st.Perf)
	}
	if st.Perf.RunP50Ms <= 0 || st.Perf.RunP50Ms > st.Perf.RunP95Ms || st.Perf.RunP95Ms > st.Perf.RunP99Ms {
		t.Fatalf("run latency quantiles not positive/monotone: %+v", st.Perf)
	}
	// A repeat is served from the cache: no new simulation is measured.
	if r, _ := postRun(t, ts, quickSpec); r.Header.Get("X-Fcdpm-Cache") != "hit" {
		t.Fatalf("repeat not a cache hit: %v", r.Header.Get("X-Fcdpm-Cache"))
	}
	getJSON(t, ts, "/v1/stats", &st)
	if st.Perf.Runs != 1 {
		t.Fatalf("cache hit incremented perf runs: %+v", st.Perf)
	}
}

// postRunAsync submits a run with ?async=1 and returns the response.
func postRunAsync(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs?async=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs?async=1: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

// TestAdmissionShedContract: with the worker and queue saturated, a sync
// submission sheds as a 503 whose Retry-After header parses to the
// documented hint, and the shed counter reaches /metrics.
func TestAdmissionShedContract(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	// A long run occupies the single worker...
	long := `{"trace":{"kind":"synthetic","seed":101,"duration":10000000}}`
	if r, b := postRunAsync(t, ts, long); r.StatusCode != 202 {
		t.Fatalf("occupy worker: %d %s", r.StatusCode, b)
	}
	// ...give the worker a moment to dequeue it, then fill the queue.
	time.Sleep(50 * time.Millisecond)
	if r, b := postRunAsync(t, ts, `{"trace":{"kind":"synthetic","seed":102,"duration":10000000}}`); r.StatusCode != 202 {
		t.Fatalf("fill queue: %d %s", r.StatusCode, b)
	}
	// The next sync submission must shed deterministically.
	resp, body := postRun(t, ts, `{"trace":{"kind":"synthetic","seed":103,"duration":10000000}}`)
	if resp.StatusCode != 503 {
		t.Fatalf("saturated admission: %d %s, want 503", resp.StatusCode, body)
	}
	d, ok := httpx.RetryAfter(resp)
	if !ok {
		t.Fatalf("shed 503 missing a parseable Retry-After header: %v", resp.Header)
	}
	if d != shedRetryAfter {
		t.Fatalf("shed Retry-After = %v, want %v", d, shedRetryAfter)
	}
	// The shed is visible on both observability surfaces.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mbuf.String(), "fcdpm_server_runs_shed_total 1") {
		t.Fatalf("/metrics does not count the shed:\n%s", mbuf.String())
	}
	var st statsPayload
	getJSON(t, ts, "/v1/stats", &st)
	if st.Runs.Shed != 1 {
		t.Fatalf("stats shed = %d, want 1", st.Runs.Shed)
	}
}

// TestAsyncCacheTag: the async 202 carries the same cache taxonomy the
// sync path exposes, in both the X-Fcdpm-Cache header and the body.
func TestAsyncCacheTag(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	long := `{"trace":{"kind":"synthetic","seed":201,"duration":10000000}}`
	r1, b1 := postRunAsync(t, ts, long)
	if r1.StatusCode != 202 || r1.Header.Get("X-Fcdpm-Cache") != "miss" {
		t.Fatalf("first async: %d cache=%q %s", r1.StatusCode, r1.Header.Get("X-Fcdpm-Cache"), b1)
	}
	// The identical spec while the first is in flight coalesces.
	r2, b2 := postRunAsync(t, ts, long)
	if r2.StatusCode != 202 || r2.Header.Get("X-Fcdpm-Cache") != "coalesced" {
		t.Fatalf("second async: %d cache=%q %s", r2.StatusCode, r2.Header.Get("X-Fcdpm-Cache"), b2)
	}
	var doc1, doc2 struct {
		ID    string `json:"id"`
		Cache string `json:"cache"`
	}
	if err := json.Unmarshal(b1, &doc1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &doc2); err != nil {
		t.Fatal(err)
	}
	if doc1.Cache != "miss" || doc2.Cache != "coalesced" {
		t.Fatalf("body cache tags = %q/%q, want miss/coalesced", doc1.Cache, doc2.Cache)
	}
	if doc1.ID != doc2.ID {
		t.Fatalf("coalesced submission got its own job: %q vs %q", doc1.ID, doc2.ID)
	}
}

// TestSweepBatchesSameTraceCells pins the batched sweep path: cells
// sharing one trace execute as lanes of a single BatchRunner pool task,
// duplicate cells collapse onto one executing lane, every cell's cached
// body is byte-identical to the scalar single-run path, and /v1/stats
// surfaces the batch instruments.
func TestSweepBatchesSameTraceCells(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	trace := `{"kind":"synthetic","seed":7,"duration":120}`
	cellSpecs := []string{
		fmt.Sprintf(`{"name":"fc","trace":%s,"policy":{"kind":"fcdpm"}}`, trace),
		fmt.Sprintf(`{"name":"cv","trace":%s,"policy":{"kind":"conv"}}`, trace),
		fmt.Sprintf(`{"name":"as","trace":%s,"policy":{"kind":"asap"}}`, trace),
		// Exact duplicate of the first cell: same cache key, so its lane
		// collapses onto the leader and only projects the result.
		fmt.Sprintf(`{"name":"fc","trace":%s,"policy":{"kind":"fcdpm"}}`, trace),
	}
	sweep := fmt.Sprintf(`{"name":"batched","scenarios":[%s]}`,
		strings.Join(cellSpecs, ","))
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("sweep accept: %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var sr sweepReport
		resp := getJSON(t, ts, "/v1/sweeps/"+acc.ID, &sr)
		if resp.StatusCode == 200 && len(sr.Cells) == 4 {
			if sr.Done != 4 || sr.Failed != 0 {
				t.Fatalf("sweep report %+v, want 4 done", sr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", sr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Byte-identity oracle: a fresh server runs each cell through the
	// scalar single-run path; the batched server must serve the very
	// same bytes from its cache.
	_, scalar := newTestServer(t, Options{})
	for i, spec := range cellSpecs {
		rb, batched := postRun(t, ts, spec)
		if rb.StatusCode != 200 || rb.Header.Get("X-Fcdpm-Cache") != "hit" {
			t.Fatalf("cell %d not cached by batched sweep: %d %s", i, rb.StatusCode, rb.Header.Get("X-Fcdpm-Cache"))
		}
		rs, want := postRun(t, scalar, spec)
		if rs.StatusCode != 200 {
			t.Fatalf("cell %d scalar run: %d %s", i, rs.StatusCode, want)
		}
		if !bytes.Equal(batched, want) {
			t.Fatalf("cell %d batched body diverged from scalar path:\n%s\n!=\n%s", i, batched, want)
		}
	}

	// The batch instruments surfaced in /v1/stats.
	var st statsPayload
	getJSON(t, ts, "/v1/stats", &st)
	if st.Batch.Batches < 1 || st.Batch.LanesTotal < 4 {
		t.Fatalf("batch stats %+v, want >=1 batch of 4 lanes", st.Batch)
	}
	if st.Batch.PlanGroupHits == 0 {
		t.Fatalf("duplicate cell produced no plan-group hits: %+v", st.Batch)
	}
}

// TestRunBadTraceRecordIs400 pins the client-fault taxonomy for errors
// that only surface at build time, inside the worker pool: a scenario
// referencing a trace file with an invalid record (NaN duration, zero
// total duration) must resolve 400 — the request can never succeed —
// not 500 as a generic engine failure.
func TestRunBadTraceRecordIs400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	dir := t.TempDir()
	for name, contents := range map[string]string{
		"nan.csv":  "idle_s,active_s,active_current_a\n10,NaN,1\n",
		"zero.csv": "idle_s,active_s,active_current_a\n0,0,1\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		spec := fmt.Sprintf(`{"trace":{"kind":"file","file":%q}}`, path)
		resp, b := postRun(t, ts, spec)
		if resp.StatusCode != 400 {
			t.Errorf("POST with trace %s: %d %s, want 400", name, resp.StatusCode, b)
		}
	}
}
