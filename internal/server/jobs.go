package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fcdpm/internal/config"
	"fcdpm/internal/predict"
	"fcdpm/internal/report"
	"fcdpm/internal/runner"
	"fcdpm/internal/runreport"
	"fcdpm/internal/sim"
	"fcdpm/internal/workload"
)

// jobKind separates single runs from sweeps.
type jobKind string

const (
	jobRun   jobKind = "run"
	jobSweep jobKind = "sweep"
)

// jobStatus is a job's lifecycle state as reported over the API.
type jobStatus string

const (
	jobQueued jobStatus = "queued"
	jobDone   jobStatus = "done"
	jobFailed jobStatus = "failed"
	jobShed   jobStatus = "shed"
)

// The run-report body is rendered by internal/runreport — the one
// function the server, the dispatcher's workers, and `fcdpm batch -rows`
// share, so a result is byte-identical wherever it was computed.

// cellState is one sweep scenario's progress, embedded in the sweep
// report once every cell resolves.
type cellState struct {
	Name   string `json:"name"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

// job is one accepted unit of API work: a single run or a whole sweep.
// Its event log streams progress; done closes when the job resolves.
type job struct {
	id     string
	kind   jobKind
	key    string // content address; run jobs only
	name   string
	events *eventLog
	done   chan struct{}

	mu       sync.Mutex
	status   jobStatus
	report   []byte // rendered response body, valid once status == jobDone
	errMsg   string
	httpCode int
	// retryAfter, when set on a 503 resolution, tells the client when to
	// come back (rendered as a Retry-After header).
	retryAfter time.Duration
	// Sweep bookkeeping: cells in submission order, count still pending.
	cells     []cellState
	remaining int
	finished  bool
}

// setReport stashes the rendered bytes for the resolve event to publish.
func (j *job) setReport(b []byte) {
	j.mu.Lock()
	j.report = b
	j.mu.Unlock()
}

// finish resolves the job exactly once: records the outcome, appends the
// terminal event, closes the stream and the done channel.
func (j *job) finish(status jobStatus, body []byte, errMsg string, httpCode int, cached bool) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.status = status
	j.report = body
	j.errMsg = errMsg
	j.httpCode = httpCode
	j.mu.Unlock()
	j.events.append(Event{
		Kind: "resolved", Job: j.id, Status: string(status),
		Cached: cached, Detail: errMsg,
	})
	j.events.close()
	close(j.done)
}

// outcome snapshots the resolved state for response writing.
func (j *job) outcome() (status jobStatus, body []byte, errMsg string, httpCode int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.report, j.errMsg, j.httpCode
}

// retryAfterHint reports the Retry-After duration for 503 resolutions.
func (j *job) retryAfterHint() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.retryAfter
}

// setRetryAfter records the backoff hint before finish resolves the job.
func (j *job) setRetryAfter(d time.Duration) {
	j.mu.Lock()
	j.retryAfter = d
	j.mu.Unlock()
}

// registry owns every job the server has accepted: lookup by ID,
// coalescing of identical in-flight runs by content address, and a
// bounded retention of completed jobs so the map cannot grow without
// bound under sustained traffic.
type registry struct {
	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	inflight map[string]*job // cache key → unfinished run job
	// finished is a FIFO of completed job IDs; the oldest are forgotten
	// once more than retain have completed.
	finished []string
	retain   int
}

func newRegistry(retain int) *registry {
	if retain <= 0 {
		retain = 512
	}
	return &registry{
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		retain:   retain,
	}
}

// newJob allocates and registers a job with a fresh sequential ID.
func (r *registry) newJob(kind jobKind, key, name string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &job{
		id:     fmt.Sprintf("%s-%06d", kind, r.seq),
		kind:   kind,
		key:    key,
		name:   name,
		status: jobQueued,
		events: newEventLog(),
		done:   make(chan struct{}),
	}
	r.jobs[j.id] = j
	return j
}

// leaseRun returns the unfinished run job already computing key (second
// result true), or registers a fresh one (false) that the caller must
// submit. Coalescing means ten identical concurrent POSTs cost one
// simulation.
func (r *registry) leaseRun(key, name string) (*job, bool) {
	r.mu.Lock()
	if j, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		return j, true
	}
	r.mu.Unlock()
	j := r.newJob(jobRun, key, name)
	r.mu.Lock()
	// Re-check under the lock: a racing lease may have won registration.
	if prior, ok := r.inflight[key]; ok {
		// Drop the orphan; its sequence number stays burned — a gap is
		// harmless, a reused ID would collide.
		delete(r.jobs, j.id)
		r.mu.Unlock()
		return prior, true
	}
	r.inflight[key] = j
	r.mu.Unlock()
	return j, false
}

// lookup returns the job by ID, if retained.
func (r *registry) lookup(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// complete moves a finished job out of the coalescing map and into the
// bounded retention window, evicting the oldest completed job beyond it.
func (r *registry) complete(j *job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j.kind == jobRun && r.inflight[j.key] == j {
		delete(r.inflight, j.key)
	}
	r.finished = append(r.finished, j.id)
	for len(r.finished) > r.retain {
		delete(r.jobs, r.finished[0])
		r.finished = r.finished[1:]
	}
}

// counts reports registry occupancy for /v1/stats.
func (r *registry) counts() (active, retained int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	retained = len(r.finished)
	active = len(r.jobs) - retained
	return active, retained
}

// taskRef routes a runner.TaskEvent back to its job (and sweep cell).
type taskRef struct {
	job  *job
	cell int // cell index for sweep tasks; -1 for single runs
	// batch, when non-nil, marks a batched sweep chunk: one pool task
	// covering several same-trace cells through sim.BatchRunner.
	batch *batchRef
}

// laneOutcome is one batched cell's resolution, recorded by the task
// body and read by the resolve hook.
type laneOutcome struct {
	status runner.Status
	errMsg string
}

// batchRef carries a batched chunk's cell indices and per-lane outcomes
// from the task body to onTaskEvent. The outcomes slice is written only
// by the (single) task goroutine and read only after the pool publishes
// the task's resolution, so no lock is needed.
type batchRef struct {
	cells    []int
	outcomes []laneOutcome
}

// runTask builds the pool task body for one scenario: build the sim
// config, run it under the task context, render the stable report,
// populate the cache, and replay the audit log into the job's stream.
func (s *Server) runTask(j *job, ref taskRef, spec *config.Scenario, key, name string) func(context.Context) (struct{}, error) {
	return func(ctx context.Context) (struct{}, error) {
		cfg, err := spec.Build()
		if err != nil {
			return struct{}{}, err
		}
		// The simulator records slots, fuel, memo stats, and wall time
		// into the shared registry itself.
		cfg.Metrics = s.metrics.sim
		res, err := sim.RunContext(ctx, cfg)
		if err != nil {
			return struct{}{}, err
		}
		body, err := runreport.Render(name, key, s.engine, res)
		if err != nil {
			return struct{}{}, err
		}
		s.cache.Put(key, body)
		for _, ev := range res.Events {
			j.events.append(Event{
				Kind: "sim", Job: j.id, Cell: cellName(j, ref.cell),
				T: ev.T, Detail: string(ev.Kind) + ": " + ev.Detail,
			})
		}
		if ref.cell < 0 {
			// Cell bytes live in the cache (the sweep report embeds only
			// per-cell status and content address); single runs serve the
			// body directly.
			j.setReport(body)
		}
		return struct{}{}, nil
	}
}

// batchTask builds the pool task body for one batched sweep chunk: all
// cells share one trace, so they execute as lanes of a single
// sim.BatchRunner walk — shared decode, shared fuel-map memo, amortized
// planning — with each lane keyed by its cell's cache key so identical
// cells collapse onto one executing lane. Per cell the body mirrors the
// scalar runTask exactly (render, cache.Put, sim-event replay), and a
// lane failure resolves only its own cell: the rest of the chunk still
// lands. Results are byte-identical to the scalar path by the
// BatchRunner oracle guarantee.
func (s *Server) batchTask(j *job, ref taskRef, specs []*config.Scenario, keys []string) func(context.Context) (struct{}, error) {
	br := ref.batch
	return func(ctx context.Context) (struct{}, error) {
		lanes := make([]sim.Lane, len(br.cells))
		for li, ci := range br.cells {
			cfg, err := specs[ci].Build()
			if err != nil {
				return struct{}{}, err
			}
			cfg.Metrics = s.metrics.sim
			lanes[li] = sim.Lane{Cfg: cfg, Key: keys[ci]}
		}
		b, err := sim.NewBatchRunner(lanes)
		if err != nil {
			return struct{}{}, err
		}
		b.Metrics = s.metrics.batch
		out, err := b.RunContext(ctx)
		if err != nil {
			// Batch-level failure (cancellation): the pool's resolution
			// status covers every cell.
			return struct{}{}, err
		}
		for li, lr := range out {
			ci := br.cells[li]
			name := cellName(j, ci)
			if lr.Err != nil {
				br.outcomes[li] = laneOutcome{status: runner.StatusFailed, errMsg: lr.Err.Error()}
				continue
			}
			body, rerr := runreport.Render(name, keys[ci], s.engine, lr.Res)
			if rerr != nil {
				br.outcomes[li] = laneOutcome{status: runner.StatusFailed, errMsg: rerr.Error()}
				continue
			}
			s.cache.Put(keys[ci], body)
			for _, ev := range lr.Res.Events {
				j.events.append(Event{
					Kind: "sim", Job: j.id, Cell: name,
					T: ev.T, Detail: string(ev.Kind) + ": " + ev.Detail,
				})
			}
			br.outcomes[li] = laneOutcome{status: runner.StatusDone}
		}
		return struct{}{}, nil
	}
}

// cellName returns the cell's display name, or "" for single runs.
func cellName(j *job, cell int) string {
	if cell < 0 {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if cell < len(j.cells) {
		return j.cells[cell].Name
	}
	return ""
}

// onTaskEvent is the runner.Options.OnEvent hook: it maps pool lifecycle
// notifications onto job progress and resolution. It runs on worker and
// submitter goroutines and must stay quick.
func (s *Server) onTaskEvent(e runner.TaskEvent) {
	v, ok := s.taskJobs.Load(e.ID)
	if !ok {
		return
	}
	ref := v.(taskRef)
	j := ref.job
	switch e.Phase {
	case runner.PhaseStart:
		j.events.append(Event{
			Kind: "attempt", Job: j.id, Cell: cellName(j, ref.cell),
			Attempt: e.Attempt,
		})
	case runner.PhaseResolve:
		s.taskJobs.Delete(e.ID)
		s.metrics.inflight.Add(-1)
		errMsg := ""
		if e.Err != nil {
			errMsg = e.Err.Error()
		}
		if ref.batch != nil {
			s.batchResolved(j, ref, e.Status, errMsg)
			return
		}
		if ref.cell >= 0 {
			s.cellResolved(j, ref.cell, e.Status, errMsg)
			return
		}
		switch e.Status {
		case runner.StatusDone:
			j.mu.Lock()
			body := j.report
			j.mu.Unlock()
			s.metrics.runsDone.Inc()
			j.finish(jobDone, body, "", 200, false)
		case runner.StatusShed:
			s.metrics.runsShed.Inc()
			j.setRetryAfter(shedRetryAfter)
			j.finish(jobShed, nil, "admission queue full, run shed", 503, false)
		case runner.StatusBreakerOpen:
			s.metrics.runsFailed.Inc()
			j.setRetryAfter(runner.DefaultBreakerCooldown)
			j.finish(jobFailed, nil, "scenario circuit breaker open", 503, false)
		case runner.StatusInterrupted:
			s.metrics.runsFailed.Inc()
			j.setRetryAfter(drainRetryAfter)
			j.finish(jobFailed, nil, "run interrupted by shutdown", 503, false)
		default: // StatusFailed (StatusResumed cannot happen: no journal)
			s.metrics.runsFailed.Inc()
			code := 500
			if clientFault(e.Err) {
				code = 400
			}
			j.finish(jobFailed, nil, errMsg, code, false)
		}
		s.reg.complete(j)
	}
}

// clientFault reports whether a failed run's cause is a defect in the
// submitted scenario rather than in the engine: spec fields that fail
// validation only at build time (a trace file with an invalid record, a
// predictor parameter out of range). These map to HTTP 400 — retrying
// the identical request cannot succeed — while genuine engine failures
// keep 500. errors.As traverses the pool's RunError / retry wrappers.
func clientFault(err error) bool {
	var cve *config.ValidationError
	var wve *workload.ValidationError
	var pce *predict.ConfigError
	return errors.As(err, &cve) || errors.As(err, &wve) || errors.As(err, &pce)
}

// batchResolved fans one batched chunk's resolution out to its cells:
// a completed task resolves each cell with its own lane outcome, while
// a shed / interrupted / failed task resolves every covered cell with
// the task's status — the same taxonomy the cells would have seen as
// individual scalar tasks.
func (s *Server) batchResolved(j *job, ref taskRef, status runner.Status, errMsg string) {
	br := ref.batch
	for li, ci := range br.cells {
		if status == runner.StatusDone {
			o := br.outcomes[li]
			if o.status == "" {
				o = laneOutcome{status: runner.StatusFailed, errMsg: "lane outcome missing"}
			}
			s.cellDone(j, ci, o.status, false, o.errMsg)
			continue
		}
		s.cellDone(j, ci, status, false, errMsg)
	}
}

// cellResolved records one sweep cell's resolution and, when it is the
// last, finalizes the sweep job.
func (s *Server) cellResolved(j *job, cell int, status runner.Status, errMsg string) {
	s.cellDone(j, cell, status, false, errMsg)
}

// cellDone is the single place a sweep cell resolves — from the pool
// (via cellResolved) or synchronously on a cache hit (cached == true).
func (s *Server) cellDone(j *job, cell int, status runner.Status, cached bool, errMsg string) {
	j.mu.Lock()
	if cell >= len(j.cells) || j.finished {
		j.mu.Unlock()
		return
	}
	c := &j.cells[cell]
	c.Status = string(status)
	c.Cached = cached
	c.Err = errMsg
	name := c.Name
	j.remaining--
	last := j.remaining == 0
	j.mu.Unlock()

	switch status {
	case runner.StatusDone:
		s.metrics.runsDone.Inc()
	case runner.StatusShed:
		s.metrics.runsShed.Inc()
	default:
		s.metrics.runsFailed.Inc()
	}
	j.events.append(Event{
		Kind: "cell", Job: j.id, Cell: name,
		Status: string(status), Cached: cached, Detail: errMsg,
	})
	if last {
		s.finalizeSweep(j)
	}
}

// sweepReport is the JSON body served for a completed sweep.
type sweepReport struct {
	ID     string      `json:"id"`
	Name   string      `json:"name"`
	Engine string      `json:"engine"`
	Cells  []cellState `json:"cells"`
	Done   int         `json:"done"`
	Cached int         `json:"cached"`
	Failed int         `json:"failed"`
}

// finalizeSweep renders the aggregate report and resolves the job.
func (s *Server) finalizeSweep(j *job) {
	j.mu.Lock()
	sr := sweepReport{ID: j.id, Name: j.name, Engine: s.engine,
		Cells: append([]cellState(nil), j.cells...)}
	j.mu.Unlock()
	for _, c := range sr.Cells {
		switch {
		case c.Status == string(runner.StatusDone) && c.Cached:
			sr.Done++
			sr.Cached++
		case c.Status == string(runner.StatusDone):
			sr.Done++
		default:
			sr.Failed++
		}
	}
	body, err := report.StableJSON(sr)
	status, code, errMsg := jobDone, 200, ""
	if err != nil {
		status, code, errMsg, body = jobFailed, 500, err.Error(), nil
	} else if sr.Failed > 0 {
		// The sweep completed but not every cell did; the report still
		// serves, the status says so.
		status = jobFailed
		errMsg = fmt.Sprintf("%d of %d cells failed", sr.Failed, len(sr.Cells))
	}
	j.finish(status, body, errMsg, code, false)
	s.reg.complete(j)
}
