package server

import (
	"net/http"
	"time"

	"fcdpm/internal/obs"
)

// slowRequestThreshold is the tracer's slow-span bar: requests beyond it
// are logged through Options.Logf. Run submissions legitimately block on
// simulation work, so the bar is generous.
const slowRequestThreshold = 30 * time.Second

// serverMetrics is the service's unified instrument set: one obs
// registry behind /metrics, /v1/stats, and the operational log. The sim
// and pool bundles are handed down to the simulator configs and the
// runner pool, so every layer records into the same series.
type serverMetrics struct {
	registry *obs.Registry
	sim      *obs.SimMetrics
	pool     *obs.PoolMetrics
	batch    *obs.BatchMetrics

	runsSubmitted *obs.Counter
	runsDone      *obs.Counter
	runsFailed    *obs.Counter
	runsShed      *obs.Counter
	runsCoalesced *obs.Counter
	inflight      *obs.Gauge

	// latency holds one request-latency histogram per route, keyed by
	// the span name the tracer reports. Populated at route registration,
	// read-only afterwards.
	latency map[string]*obs.Histogram
	tracer  obs.Tracer
}

func newServerMetrics(logf func(format string, args ...any)) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		registry:      reg,
		sim:           obs.NewSimMetrics(reg),
		pool:          obs.NewPoolMetrics(reg),
		batch:         obs.NewBatchMetrics(reg),
		runsSubmitted: reg.Counter("fcdpm_server_runs_submitted_total", "Scenario runs submitted to the pool (cache misses)."),
		runsDone:      reg.Counter("fcdpm_server_runs_done_total", "Scenario runs that completed."),
		runsFailed:    reg.Counter("fcdpm_server_runs_failed_total", "Scenario runs that failed or were interrupted."),
		runsShed:      reg.Counter("fcdpm_server_runs_shed_total", "Scenario runs shed at admission."),
		runsCoalesced: reg.Counter("fcdpm_server_runs_coalesced_total", "Requests coalesced onto an identical in-flight run."),
		inflight:      reg.Gauge("fcdpm_server_inflight_tasks", "Pool tasks submitted and not yet resolved."),
		latency:       make(map[string]*obs.Histogram),
	}
	m.tracer = obs.Tracer{
		Slow: slowRequestThreshold,
		Logf: logf,
		OnEnd: func(name string, d time.Duration) {
			m.latency[name].Observe(d.Seconds())
		},
	}
	return m
}

// endpoint registers the route's latency series and returns the wrapped
// handler. Route names become the `endpoint` label, bounded by code.
func (m *serverMetrics) endpoint(route string, h http.HandlerFunc) http.HandlerFunc {
	m.latency[route] = m.registry.Histogram(
		"fcdpm_http_request_seconds", "Request latency by endpoint.",
		obs.DurationBuckets, obs.Label{Key: "endpoint", Value: route})
	return func(w http.ResponseWriter, r *http.Request) {
		sp := m.tracer.Start(route)
		defer sp.End()
		h(w, r)
	}
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.registry.WritePrometheus(w)
}
