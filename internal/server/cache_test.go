package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := newResultCache(100, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("%064d", i) }
	blob := bytes.Repeat([]byte("x"), 40)
	c.put(key(1), blob)
	c.put(key(2), blob)
	// Touch 1 so 2 is the eviction victim.
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.put(key(3), blob) // 120 bytes > 100: evict LRU (key 2)
	if _, ok := c.get(key(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.get(key(3)); !ok {
		t.Fatal("fresh entry evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestCacheRejectsOversizeBlob(t *testing.T) {
	// Regression: the eviction loop used to refuse to drop the last
	// resident, so a single blob larger than the bound stayed pinned
	// forever with Bytes > MaxBytes. Oversize blobs must now never enter
	// the memory tier — and must be counted.
	c, _ := newResultCache(10, "", nil)
	k := fmt.Sprintf("%064d", 1)
	big := bytes.Repeat([]byte("y"), 50)
	c.put(k, big)
	if _, ok := c.get(k); ok {
		t.Fatal("oversize blob admitted to the memory tier")
	}
	st := c.stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize blob left residue: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("Bytes %d above MaxBytes %d", st.Bytes, st.MaxBytes)
	}
	if st.Oversize != 1 {
		t.Fatalf("oversize reject not counted: %+v", st)
	}
	// The tier still works for blobs that fit.
	small := []byte("12345")
	c.put(k, small)
	if b, ok := c.get(k); !ok || !bytes.Equal(b, small) {
		t.Fatal("fitting blob not admitted after oversize reject")
	}
}

func TestCacheOversizeBlobServedFromDisk(t *testing.T) {
	// An oversize blob skips memory but still persists to (and serves
	// from) the disk tier.
	c, _ := newResultCache(10, t.TempDir(), nil)
	k := fmt.Sprintf("%064d", 2)
	big := bytes.Repeat([]byte("z"), 50)
	c.put(k, big)
	if b, ok := c.get(k); !ok || !bytes.Equal(b, big) {
		t.Fatal("oversize blob not served by the disk tier")
	}
	if st := c.stats(); st.DiskHits != 1 || st.Entries != 0 {
		t.Fatalf("disk-tier oversize serve miscounted: %+v", st)
	}
}

func TestCachePutMemoryTierDisabled(t *testing.T) {
	// With the memory tier off (zero or negative bound) and no disk
	// tier, puts are silent no-ops: no residue, no panic, stable stats.
	for _, max := range []int64{0, -1} {
		c, err := newResultCache(max, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		k := fmt.Sprintf("%064d", 3)
		c.put(k, []byte("data"))
		if _, ok := c.get(k); ok {
			t.Fatalf("max=%d: entry admitted with memory tier disabled", max)
		}
		st := c.stats()
		if st.Entries != 0 || st.Bytes != 0 {
			t.Fatalf("max=%d: residue in disabled tier: %+v", max, st)
		}
		// Not an oversize reject — the tier is off, not too small.
		if st.Oversize != 0 {
			t.Fatalf("max=%d: disabled tier counted oversize: %+v", max, st)
		}
		if st.Misses != 1 {
			t.Fatalf("max=%d: get not counted as miss: %+v", max, st)
		}
	}
}

func TestCacheDiskTierGuardsKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(0, dir, nil) // memory tier disabled
	if err != nil {
		t.Fatal(err)
	}
	// A traversal-shaped key must never touch the filesystem.
	c.put("../escape", []byte("nope"))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("path traversal escaped the cache dir")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("unexpected files for invalid key: %v", entries)
	}

	valid := fmt.Sprintf("%064x", 0xabc)
	c.put(valid, []byte(`{"ok":true}`))
	if b, ok := c.get(valid); !ok || !bytes.Equal(b, []byte(`{"ok":true}`)) {
		t.Fatal("disk round-trip failed with memory tier disabled")
	}
	if st := c.stats(); st.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := atomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("replace: %q %v", b, err)
	}
	// No temp litter.
	files, _ := filepath.Glob(filepath.Join(dir, ".cache-*"))
	if len(files) != 0 {
		t.Fatalf("temp files left behind: %v", files)
	}
}

func TestEventLogTailAndClose(t *testing.T) {
	l := newEventLog()
	got := make(chan Event, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			line, ok := l.next(context.Background(), i)
			if !ok {
				close(got)
				return
			}
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				t.Errorf("bad line: %v", err)
				return
			}
			got <- e
		}
	}()
	l.append(Event{Kind: "a", Job: "j"})
	l.append(Event{Kind: "b", Job: "j"})
	l.close()
	wg.Wait()
	var kinds []string
	for e := range got {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "a" || kinds[1] != "b" {
		t.Fatalf("tailed %v", kinds)
	}
	// Appends after close are dropped, and snapshots see the final state.
	l.append(Event{Kind: "late"})
	if n := len(l.snapshot()); n != 2 {
		t.Fatalf("post-close append leaked: %d lines", n)
	}
}

func TestEventLogContextCancelUnblocks(t *testing.T) {
	l := newEventLog()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := l.next(ctx, 0)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled reader got a line")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled reader stayed blocked")
	}
}
