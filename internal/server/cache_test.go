package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := newResultCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("%064d", i) }
	blob := bytes.Repeat([]byte("x"), 40)
	c.put(key(1), blob)
	c.put(key(2), blob)
	// Touch 1 so 2 is the eviction victim.
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.put(key(3), blob) // 120 bytes > 100: evict LRU (key 2)
	if _, ok := c.get(key(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.get(key(3)); !ok {
		t.Fatal("fresh entry evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestCacheOversizeEntryStillServes(t *testing.T) {
	c, _ := newResultCache(10, "")
	k := fmt.Sprintf("%064d", 1)
	big := bytes.Repeat([]byte("y"), 50)
	c.put(k, big)
	// A single entry larger than the bound is kept (the bound evicts
	// down to one resident, never to zero).
	if b, ok := c.get(k); !ok || !bytes.Equal(b, big) {
		t.Fatal("oversize entry not retained")
	}
}

func TestCacheDiskTierGuardsKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(0, dir) // memory tier disabled
	if err != nil {
		t.Fatal(err)
	}
	// A traversal-shaped key must never touch the filesystem.
	c.put("../escape", []byte("nope"))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("path traversal escaped the cache dir")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("unexpected files for invalid key: %v", entries)
	}

	valid := fmt.Sprintf("%064x", 0xabc)
	c.put(valid, []byte(`{"ok":true}`))
	if b, ok := c.get(valid); !ok || !bytes.Equal(b, []byte(`{"ok":true}`)) {
		t.Fatal("disk round-trip failed with memory tier disabled")
	}
	if st := c.stats(); st.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := atomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("replace: %q %v", b, err)
	}
	// No temp litter.
	files, _ := filepath.Glob(filepath.Join(dir, ".cache-*"))
	if len(files) != 0 {
		t.Fatalf("temp files left behind: %v", files)
	}
}

func TestEventLogTailAndClose(t *testing.T) {
	l := newEventLog()
	got := make(chan Event, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			line, ok := l.next(context.Background(), i)
			if !ok {
				close(got)
				return
			}
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				t.Errorf("bad line: %v", err)
				return
			}
			got <- e
		}
	}()
	l.append(Event{Kind: "a", Job: "j"})
	l.append(Event{Kind: "b", Job: "j"})
	l.close()
	wg.Wait()
	var kinds []string
	for e := range got {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "a" || kinds[1] != "b" {
		t.Fatalf("tailed %v", kinds)
	}
	// Appends after close are dropped, and snapshots see the final state.
	l.append(Event{Kind: "late"})
	if n := len(l.snapshot()); n != 2 {
		t.Fatalf("post-close append leaked: %d lines", n)
	}
}

func TestEventLogContextCancelUnblocks(t *testing.T) {
	l := newEventLog()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := l.next(ctx, 0)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("canceled reader got a line")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled reader stayed blocked")
	}
}
