package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more (x, y) step series as an ASCII chart — enough
// to eyeball the Fig 7 current profiles or the Fig 2/3 curves in a
// terminal without leaving the CLI.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (default 72×16).
	Width, Height int
	series        []chartSeries
}

type chartSeries struct {
	name   string
	glyph  byte
	xs, ys []float64
	step   bool
}

// NewChart creates an empty chart.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel, Width: 72, Height: 16}
}

// Line adds a series drawn with linear interpolation between points.
func (c *Chart) Line(name string, glyph byte, xs, ys []float64) error {
	return c.add(name, glyph, xs, ys, false)
}

// Step adds a series drawn as a staircase (value holds until the next x) —
// the natural rendering for piecewise-constant current profiles.
func (c *Chart) Step(name string, glyph byte, xs, ys []float64) error {
	return c.add(name, glyph, xs, ys, true)
}

func (c *Chart) add(name string, glyph byte, xs, ys []float64, step bool) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: series %q: %d xs vs %d ys", name, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: series %q is empty", name)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return fmt.Errorf("report: series %q xs not sorted at %d", name, i)
		}
	}
	c.series = append(c.series, chartSeries{name: name, glyph: glyph, xs: xs, ys: ys, step: step})
	return nil
}

// valueAt evaluates a series at x (step-hold or linear).
func (s *chartSeries) valueAt(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0]
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1]
	}
	// Linear scan is fine at chart resolution.
	i := 1
	for i < n && s.xs[i] <= x {
		i++
	}
	if s.step {
		return s.ys[i-1]
	}
	x0, x1 := s.xs[i-1], s.xs[i]
	if x1 == x0 {
		return s.ys[i]
	}
	t := (x - x0) / (x1 - x0)
	return s.ys[i-1]*(1-t) + s.ys[i]*t
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: chart has no series")
	}
	width, height := c.Width, c.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		xmin = math.Min(xmin, s.xs[0])
		xmax = math.Max(xmax, s.xs[len(s.xs)-1])
		for _, y := range s.ys {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom so the top glyphs are visible.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for col := 0; col < width; col++ {
			x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
			y := s.valueAt(x)
			row := int((ymax - y) / (ymax - ymin) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = s.glyph
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	legend := make([]string, 0, len(c.series))
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.glyph, s.name))
	}
	fmt.Fprintf(&b, "%s  [%s]\n", c.YLabel, strings.Join(legend, ", "))
	for r, row := range grid {
		yTop := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s\n", yTop, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*g%*g  (%s)\n", "", width/2, xmin, width-width/2-1, xmax, c.XLabel)
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string, or an error message.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}
