package report

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("test", "t (s)", "I (A)")
	if err := c.Step("load", '#', []float64{0, 10, 20}, []float64{0.2, 1.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Line("flat", '*', []float64{0, 20}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	for _, want := range []string{"test", "t (s)", "I (A)", "#=load", "*=flat", "#", "*", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The flat series occupies a single row.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.ContainsRune(line, '*') && !strings.Contains(line, "*=flat") {
			rows++
		}
	}
	if rows != 1 {
		t.Errorf("flat series spans %d rows, want 1:\n%s", rows, out)
	}
}

func TestChartStepVsLine(t *testing.T) {
	s := chartSeries{xs: []float64{0, 10}, ys: []float64{0, 10}, step: true}
	if got := s.valueAt(5); got != 0 {
		t.Errorf("step valueAt(5) = %v, want 0 (hold)", got)
	}
	s.step = false
	if got := s.valueAt(5); got != 5 {
		t.Errorf("line valueAt(5) = %v, want 5", got)
	}
	if got := s.valueAt(-1); got != 0 {
		t.Errorf("below-domain = %v", got)
	}
	if got := s.valueAt(99); got != 10 {
		t.Errorf("above-domain = %v", got)
	}
}

func TestChartErrors(t *testing.T) {
	c := NewChart("", "", "")
	if err := c.Line("bad", 'x', []float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.Line("bad", 'x', nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := c.Line("bad", 'x', []float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("unsorted xs accepted")
	}
	empty := NewChart("", "", "")
	if !strings.Contains(empty.String(), "no series") {
		t.Error("empty chart should report no series")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := NewChart("const", "x", "y")
	if err := c.Line("c", 'o', []float64{0, 1}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "o") {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestChartTinyDimensionsClamped(t *testing.T) {
	c := NewChart("", "", "")
	c.Width, c.Height = 1, 1
	if err := c.Line("s", '.', []float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if out := c.String(); !strings.Contains(out, ".") {
		t.Fatalf("clamped chart unusable:\n%s", out)
	}
}
