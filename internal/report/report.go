// Package report renders experiment results as plain-text tables and CSV
// series for the figure regenerations.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: 4 significant decimals, trimmed.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// Percent formats a ratio as a percentage with one decimal, the paper's
// table style ("30.8 %").
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}

// CSV is a minimal float-series CSV writer for figure data.
type CSV struct {
	w       io.Writer
	err     error
	columns int
}

// NewCSV writes the header row and returns the writer.
func NewCSV(w io.Writer, headers ...string) *CSV {
	c := &CSV{w: w, columns: len(headers)}
	_, c.err = fmt.Fprintln(w, strings.Join(headers, ","))
	return c
}

// Row writes one row of values; a column-count mismatch is recorded as an
// error surfaced by Err.
func (c *CSV) Row(values ...float64) {
	if c.err != nil {
		return
	}
	if len(values) != c.columns {
		c.err = fmt.Errorf("report: CSV row has %d values, want %d", len(values), c.columns)
		return
	}
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	_, c.err = fmt.Fprintln(c.w, strings.Join(parts, ","))
}

// Err returns the first write error.
func (c *CSV) Err() error { return c.err }

// Markdown renders the table as a GitHub-flavoured Markdown table, for
// embedding experiment outputs in documentation.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(t.Headers))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}
