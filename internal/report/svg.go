package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVGChart renders step/line series as a standalone SVG document — the
// publication-quality counterpart of the ASCII Chart, used by fcdpm-bench
// to emit Fig 2/3/7 as vector figures. Only the stdlib is used: the SVG is
// assembled as text.
type SVGChart struct {
	Title          string
	XLabel, YLabel string
	// Width and Height are the document dimensions in pixels (default
	// 720×400).
	Width, Height int
	series        []svgSeries
}

type svgSeries struct {
	name   string
	color  string
	xs, ys []float64
	step   bool
}

// svgPalette cycles through distinguishable stroke colors.
var svgPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// NewSVGChart creates an empty SVG chart.
func NewSVGChart(title, xLabel, yLabel string) *SVGChart {
	return &SVGChart{Title: title, XLabel: xLabel, YLabel: yLabel, Width: 720, Height: 400}
}

// Line adds a linearly interpolated series.
func (c *SVGChart) Line(name string, xs, ys []float64) error { return c.add(name, xs, ys, false) }

// Step adds a staircase series (value holds until the next x).
func (c *SVGChart) Step(name string, xs, ys []float64) error { return c.add(name, xs, ys, true) }

func (c *SVGChart) add(name string, xs, ys []float64, step bool) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: svg series %q: %d xs vs %d ys", name, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: svg series %q is empty", name)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return fmt.Errorf("report: svg series %q xs not sorted at %d", name, i)
		}
	}
	color := svgPalette[len(c.series)%len(svgPalette)]
	c.series = append(c.series, svgSeries{name: name, color: color, xs: xs, ys: ys, step: step})
	return nil
}

// Render writes the SVG document to w.
func (c *SVGChart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: svg chart has no series")
	}
	width, height := c.Width, c.Height
	if width < 200 {
		width = 200
	}
	if height < 120 {
		height = 120
	}
	const (
		marginL = 64
		marginR = 16
		marginT = 40
		marginB = 48
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		xmin = math.Min(xmin, s.xs[0])
		xmax = math.Max(xmax, s.xs[len(s.xs)-1])
		for _, y := range s.ys {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.06
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (ymax-y)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginL, svgEscape(c.Title))
	}
	// Axes box and gridlines with tick labels.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/ticks
		fy := ymin + (ymax-ymin)*float64(i)/ticks
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px(fx), marginT, px(fx), float64(marginT)+plotH)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(fy), float64(marginL)+plotW, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(fx), float64(height-marginB)+16, svgNum(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py(fy)+4, svgNum(fy))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-10, svgEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, svgEscape(c.YLabel))

	// Series polylines.
	for _, s := range c.series {
		var pts strings.Builder
		for i := range s.xs {
			if s.step && i > 0 {
				// Horizontal run to the new x at the old y.
				fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.xs[i]), py(s.ys[i-1]))
			}
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.xs[i]), py(s.ys[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			strings.TrimSpace(pts.String()), s.color)
	}
	// Legend.
	for i, s := range c.series {
		lx := marginL + 10
		ly := marginT + 16 + i*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, s.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly, svgEscape(s.name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// svgNum formats a tick value compactly.
func svgNum(v float64) string {
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	switch {
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// svgEscape escapes XML-special characters in labels.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
