package report

import (
	"bytes"
	"testing"
)

func TestStableJSONDeterministic(t *testing.T) {
	// Maps are the dangerous case: iteration order is randomized, so a
	// naive encoder would emit different bytes run to run.
	m := map[string]float64{}
	for _, k := range []string{"zeta", "alpha", "mu", "beta", "omega", "kappa"} {
		m[k] = float64(len(k))
	}
	first, err := StableJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		again, err := StableJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("iteration %d: %s != %s", i, again, first)
		}
	}
	if bytes.HasSuffix(first, []byte("\n")) {
		t.Fatal("trailing newline survived")
	}
}

func TestStableJSONNoHTMLEscape(t *testing.T) {
	b, err := StableJSON(map[string]string{"chain": "FC-DPM -> ASAP & Conv <shed>"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`\u003c`)) || bytes.Contains(b, []byte(`\u0026`)) {
		t.Fatalf("HTML escaping applied: %s", b)
	}
	if !bytes.Contains(b, []byte("FC-DPM -> ASAP & Conv <shed>")) {
		t.Fatalf("payload mangled: %s", b)
	}
}

func TestStableJSONError(t *testing.T) {
	if _, err := StableJSON(func() {}); err == nil {
		t.Fatal("unencodable value accepted")
	}
}
