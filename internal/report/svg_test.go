package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestSVGChartRenders(t *testing.T) {
	c := NewSVGChart("Fig 7 & friends", "t (s)", "I (A)")
	if err := c.Step("load", []float64{0, 10, 20}, []float64{0.2, 1.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Line("flat", []float64{0, 20}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Fig 7 &amp; friends", "t (s)", "I (A)",
		"load", "flat", "#1f77b4", "#d62728",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Errorf("polylines = %d, want 2", n)
	}
}

func TestSVGChartErrors(t *testing.T) {
	c := NewSVGChart("", "", "")
	if err := c.Line("bad", []float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := c.Line("bad", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if err := c.Line("bad", []float64{2, 1}, []float64{0, 0}); err == nil {
		t.Error("unsorted xs accepted")
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("empty chart rendered")
	}
}

func TestSVGStepEmitsHorizontalRuns(t *testing.T) {
	c := NewSVGChart("", "x", "y")
	if err := c.Step("s", []float64{0, 10}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// A step series with 2 points yields 3 polyline vertices (corner).
	out := buf.String()
	start := strings.Index(out, `points="`) + len(`points="`)
	end := strings.Index(out[start:], `"`)
	verts := strings.Fields(out[start : start+end])
	if len(verts) != 3 {
		t.Fatalf("step vertices = %d, want 3 (%v)", len(verts), verts)
	}
}

func TestSVGConstantSeries(t *testing.T) {
	c := NewSVGChart("", "", "")
	if err := c.Line("c", []float64{5, 5.0000001}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polyline") {
		t.Fatal("constant series not drawn")
	}
}

func TestSVGNum(t *testing.T) {
	cases := map[float64]string{0: "0", 150: "150", 1.25: "1.2", 0.5333: "0.53"}
	for in, want := range cases {
		if got := svgNum(in); got != want {
			t.Errorf("svgNum(%v) = %q, want %q", in, got, want)
		}
	}
}
