package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table 2", "Policy", "Normalized")
	tab.AddRow("Conv-DPM", "100%")
	tab.AddRow("FC-DPM", 0.308)
	out := tab.String()
	for _, want := range []string{"Table 2", "Policy", "Conv-DPM", "100%", "0.308"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header row and the first data row should place
	// the second column at the same offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	hIdx := strings.Index(lines[1], "Normalized")
	dIdx := strings.Index(lines[3], "100%")
	if hIdx != dIdx {
		t.Errorf("columns misaligned: header at %d, data at %d\n%s", hIdx, dIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow(1)
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestFormatFloatTrims(t *testing.T) {
	tab := NewTable("", "X")
	tab.AddRow(1.5)
	if !strings.Contains(tab.String(), "1.5\n") {
		t.Errorf("trailing zeros not trimmed: %q", tab.String())
	}
	tab2 := NewTable("", "X")
	tab2.AddRow(2.0)
	if !strings.Contains(tab2.String(), "2\n") {
		t.Errorf("integral float not trimmed: %q", tab2.String())
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.308); got != "30.8%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(1); got != "100.0%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf, "t", "if")
	c.Row(0, 1.2)
	c.Row(0.5, 0.53)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	want := "t,if\n0,1.2\n0.5,0.53\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestCSVColumnMismatch(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf, "a", "b")
	c.Row(1)
	if c.Err() == nil {
		t.Fatal("column mismatch not reported")
	}
	// Subsequent rows are suppressed after an error.
	before := buf.Len()
	c.Row(1, 2)
	if buf.Len() != before {
		t.Error("rows written after error")
	}
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("Results", "Policy", "Fuel")
	tab.AddRow("FC-DPM", 13.45)
	md := tab.Markdown()
	for _, want := range []string{"**Results**", "| Policy | Fuel |", "|---|---|", "| FC-DPM | 13.45 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	short := NewTable("", "A", "B")
	short.AddRow("only")
	if !strings.Contains(short.Markdown(), "| only |  |") {
		t.Errorf("short row not padded:\n%s", short.Markdown())
	}
}
