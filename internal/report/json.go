package report

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// StableJSON encodes v deterministically: struct fields in declaration
// order, map keys sorted, no HTML escaping, no trailing newline. Two
// calls over equal values yield byte-identical output — the property the
// serving subsystem's content-addressed result cache relies on to return
// repeated reports byte-for-byte.
func StableJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("report: stable encode: %w", err)
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}
