// Package units provides typed physical quantities used throughout fcdpm.
//
// The simulator and optimizer work on raw float64 values internally for
// speed; these types exist so that public API boundaries are unambiguous
// about what a number means (amps vs. watts vs. amp-seconds) and so that
// values print with sensible engineering notation.
//
// All quantities are SI: current in amperes, voltage in volts, power in
// watts, charge in coulombs (amp-seconds), energy in joules, and time in
// seconds. The paper reports charge in A-s and A-min; Charge has helpers
// for both.
package units

import (
	"fmt"
	"math"
)

// Current is an electric current in amperes.
type Current float64

// Voltage is an electric potential in volts.
type Voltage float64

// Power is a power in watts.
type Power float64

// Charge is an electric charge in coulombs (amp-seconds).
type Charge float64

// Energy is an energy in joules (watt-seconds).
type Energy float64

// Seconds is a duration in seconds. A plain float64 duration is used instead
// of time.Duration because simulation timescales are fractional seconds and
// the arithmetic is all floating point.
type Seconds float64

// Amps returns the current as a raw float64 in amperes.
func (c Current) Amps() float64 { return float64(c) }

// MilliAmps returns the current in milliamperes.
func (c Current) MilliAmps() float64 { return float64(c) * 1e3 }

// Volts returns the voltage as a raw float64 in volts.
func (v Voltage) Volts() float64 { return float64(v) }

// Watts returns the power as a raw float64 in watts.
func (p Power) Watts() float64 { return float64(p) }

// AmpSeconds returns the charge in amp-seconds (coulombs).
func (q Charge) AmpSeconds() float64 { return float64(q) }

// AmpMinutes returns the charge in amp-minutes, the unit the paper uses for
// the supercapacitor capacity ("100 mA-min").
func (q Charge) AmpMinutes() float64 { return float64(q) / 60 }

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// Sec returns the duration in seconds as a raw float64.
func (s Seconds) Sec() float64 { return float64(s) }

// ChargeFromAmpMinutes builds a Charge from an amp-minute value.
func ChargeFromAmpMinutes(aMin float64) Charge { return Charge(aMin * 60) }

// PowerAt returns the power drawn by current c at voltage v.
func PowerAt(c Current, v Voltage) Power { return Power(float64(c) * float64(v)) }

// CurrentAt returns the current corresponding to power p at voltage v.
// It panics if v is zero, since that is a construction error, not a runtime
// condition.
func CurrentAt(p Power, v Voltage) Current {
	if v == 0 {
		panic("units: CurrentAt with zero voltage")
	}
	return Current(float64(p) / float64(v))
}

// String formats the current with engineering units (A or mA).
func (c Current) String() string {
	a := float64(c)
	if math.Abs(a) < 1 {
		return fmt.Sprintf("%.1f mA", a*1e3)
	}
	return fmt.Sprintf("%.3f A", a)
}

// String formats the voltage in volts.
func (v Voltage) String() string { return fmt.Sprintf("%.2f V", float64(v)) }

// String formats the power with engineering units (W or mW).
func (p Power) String() string {
	w := float64(p)
	if math.Abs(w) < 1 {
		return fmt.Sprintf("%.1f mW", w*1e3)
	}
	return fmt.Sprintf("%.2f W", w)
}

// String formats the charge in amp-seconds.
func (q Charge) String() string { return fmt.Sprintf("%.2f A-s", float64(q)) }

// String formats the energy in joules.
func (e Energy) String() string { return fmt.Sprintf("%.2f J", float64(e)) }

// String formats the duration in seconds.
func (s Seconds) String() string { return fmt.Sprintf("%.2f s", float64(s)) }
