package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPowerAt(t *testing.T) {
	p := PowerAt(Current(1.2), Voltage(12))
	if got := p.Watts(); math.Abs(got-14.4) > 1e-12 {
		t.Fatalf("PowerAt(1.2A, 12V) = %v W, want 14.4", got)
	}
}

func TestCurrentAt(t *testing.T) {
	c := CurrentAt(Power(14.65), Voltage(12))
	if got := c.Amps(); math.Abs(got-14.65/12) > 1e-12 {
		t.Fatalf("CurrentAt(14.65W, 12V) = %v A, want %v", got, 14.65/12)
	}
}

func TestCurrentAtZeroVoltagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CurrentAt(.., 0) did not panic")
		}
	}()
	CurrentAt(Power(1), Voltage(0))
}

func TestChargeFromAmpMinutes(t *testing.T) {
	q := ChargeFromAmpMinutes(0.1) // the paper's 100 mA-min supercap
	if got := q.AmpSeconds(); got != 6 {
		t.Fatalf("100 mA-min = %v A-s, want 6", got)
	}
	if got := q.AmpMinutes(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("round trip A-min = %v, want 0.1", got)
	}
}

func TestMilliAmps(t *testing.T) {
	if got := Current(0.4).MilliAmps(); math.Abs(got-400) > 1e-9 {
		t.Fatalf("0.4 A = %v mA, want 400", got)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, wantSub string
	}{
		{Current(0.2).String(), "mA"},
		{Current(1.3).String(), "A"},
		{Voltage(12).String(), "V"},
		{Power(0.5).String(), "mW"},
		{Power(14.65).String(), "W"},
		{Charge(6).String(), "A-s"},
		{Energy(192).String(), "J"},
		{Seconds(3.03).String(), "s"},
	}
	for _, c := range cases {
		if !strings.Contains(c.got, c.wantSub) {
			t.Errorf("%q does not contain %q", c.got, c.wantSub)
		}
	}
}

// Property: PowerAt and CurrentAt are inverses for any nonzero voltage.
func TestPowerCurrentRoundTrip(t *testing.T) {
	f := func(amps, volts float64) bool {
		if volts == 0 || math.IsNaN(amps) || math.IsInf(amps, 0) ||
			math.IsNaN(volts) || math.IsInf(volts, 0) {
			return true
		}
		// Keep magnitudes in a sane range to avoid overflow artifacts.
		amps = math.Mod(amps, 1e6)
		volts = math.Mod(volts, 1e6)
		if volts == 0 {
			return true
		}
		p := PowerAt(Current(amps), Voltage(volts))
		back := CurrentAt(p, Voltage(volts)).Amps()
		return math.Abs(back-amps) <= 1e-9*math.Max(1, math.Abs(amps))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: amp-minute conversion round-trips.
func TestAmpMinuteRoundTrip(t *testing.T) {
	f := func(aMin float64) bool {
		if math.IsNaN(aMin) || math.IsInf(aMin, 0) {
			return true
		}
		aMin = math.Mod(aMin, 1e9)
		back := ChargeFromAmpMinutes(aMin).AmpMinutes()
		return math.Abs(back-aMin) <= 1e-9*math.Max(1, math.Abs(aMin))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
