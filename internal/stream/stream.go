// Package stream provides an append-only, broadcast-on-append line log:
// writers append encoded lines, any number of readers tail the log
// concurrently, each at its own cursor, blocking for new lines until the
// log closes. It is the buffering layer beneath every NDJSON progress
// stream in the repo (the simulation server's job events, the
// dispatcher's sweep events).
package stream

import (
	"context"
	"sync"
)

// Log is an append-only line buffer with blocking tails. The zero value
// is not usable; call NewLog.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  [][]byte
	closed bool
}

// NewLog returns an empty open log.
func NewLog() *Log {
	l := &Log{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append stores one line (without trailing newline) and wakes every
// tailing reader. Appends after Close are dropped. The log aliases the
// slice; callers must not mutate it afterwards.
func (l *Log) Append(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.lines = append(l.lines, line)
	l.cond.Broadcast()
}

// Len returns the number of lines appended so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// Close ends the stream: tailing readers drain what is buffered and
// return.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// Next returns line i, blocking until it exists, the log closes, or ctx
// is done. The second result is false when no more lines will come.
func (l *Log) Next(ctx context.Context, i int) ([]byte, bool) {
	// A context expiry must wake the cond-waiters, who cannot select.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.cond.Broadcast()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if i < len(l.lines) {
			return l.lines[i], true
		}
		if l.closed || ctx.Err() != nil {
			return nil, false
		}
		l.cond.Wait()
	}
}

// Snapshot returns the lines buffered so far, for non-blocking reads.
func (l *Log) Snapshot() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.lines))
	copy(out, l.lines)
	return out
}
