package fcdpm

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// TestFacadeQuickstart exercises the doc-comment quick-start path through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimConfig{
		Sys: sys, Dev: dev,
		Store:  MustSuperCap(6, 1),
		Trace:  trace,
		Policy: NewFCDPM(sys, dev),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fuel <= 0 || res.Duration <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if life := res.Lifetime(3600); life <= 0 || math.IsInf(life, 0) {
		t.Fatalf("lifetime = %v", life)
	}
}

func TestFacadePolicyOrdering(t *testing.T) {
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Policy) *Result {
		res, err := Run(SimConfig{
			Sys: sys, Dev: dev,
			Store: MustSuperCap(6, 1), Trace: trace, Policy: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	conv := run(NewConv(sys))
	asap := run(NewASAP(sys))
	fc := run(NewFCDPM(sys, dev))
	if !(fc.Fuel < asap.Fuel && asap.Fuel < conv.Fuel) {
		t.Fatalf("ordering broken: fc=%v asap=%v conv=%v", fc.Fuel, asap.Fuel, conv.Fuel)
	}
}

func TestFacadeOptimizeSlot(t *testing.T) {
	set, err := OptimizeSlot(PaperSystem(), 200, OptSlot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set.IFi-16.0/30) > 1e-9 {
		t.Fatalf("IFi = %v", set.IFi)
	}
}

func TestFacadeExperiments(t *testing.T) {
	c1, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Row("FC-DPM") == nil {
		t.Fatal("missing FC-DPM row")
	}
	c2, err := Experiment2(1)
	if err != nil {
		t.Fatal(err)
	}
	if c2.SavingVsASAP <= 0 {
		t.Fatalf("Exp2 saving = %v", c2.SavingVsASAP)
	}
	m, err := MotivationalExample()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.FCDPMFuel-13.45) > 0.01 {
		t.Fatalf("motivational fuel = %v", m.FCDPMFuel)
	}
}

func TestFacadePredictors(t *testing.T) {
	series := []float64{8, 12, 20, 9, 15}
	for _, p := range []Predictor{
		MustExpAverage(0.5, 14), NewLastValue(14),
		MustRegressionPredictor(3, 14), MustTreePredictor(4, 1, 8, 20, 14),
		MustMarkovPredictor(4, 8, 20, 14),
	} {
		acc, err := EvaluatePredictor(p, series)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if acc.RMSE < 0 || math.IsNaN(acc.RMSE) {
			t.Errorf("%s: bad RMSE %v", p.Name(), acc.RMSE)
		}
	}
}

func TestFacadeComponents(t *testing.T) {
	if BCS20W().Voltage(0) != 18.2 {
		t.Error("stack open-circuit voltage")
	}
	if got := NewPWMPFMConverter(12).OutputVoltage(); got != 12 {
		t.Errorf("converter vout = %v", got)
	}
	chain, err := NewChainEfficiency(BCS20W(), NewPWMPFMConverter(12), ProportionalController())
	if err != nil {
		t.Fatal(err)
	}
	if chain.Eta(0.5) <= chain.Eta(1.2) {
		t.Error("chain efficiency should decline")
	}
	sys, err := NewSystem(12, 37.5, 0.1, 1.2, LinearEfficiency{Alpha: 0.45, Beta: 0.13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.StackCurrent(1.2)-1.306) > 0.001 {
		t.Errorf("Eq 4 at 1.2 A: %v", sys.StackCurrent(1.2))
	}
	if b, err := NewLiIon(6, 0.5, 0.01, 1); err != nil || b.Capacity() != 6 {
		t.Errorf("LiIon: %v", err)
	}
	if tr := PeriodicTrace(3, 10, 2, 1); tr.Len() != 3 {
		t.Error("periodic trace")
	}
	if SyntheticDevice().BreakEven() != 10 {
		t.Error("synthetic break-even")
	}
	if StateRun.String() != "RUN" || StateSleep.String() != "SLEEP" {
		t.Error("state names")
	}
	if tr, err := SyntheticTrace(1); err != nil || tr.Len() == 0 {
		t.Errorf("synthetic trace: %v", err)
	}
}

// TestFacadeSweepResume interrupts a fault sweep before it starts and
// then completes it against the same journal: the partial invocation
// must surface ErrSweepInterrupted with the pending-cell count, and the
// completion must not lose any rows.
func TestFacadeSweepResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	opts := FaultSweepOptions{Journal: journal}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before any cell runs
	partial, err := FaultSweepOpts(ctx, 1, opts)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("canceled sweep: err = %v, want ErrSweepInterrupted", err)
	}
	if partial == nil || partial.Interrupted == 0 {
		t.Fatalf("partial result = %+v", partial)
	}

	full, err := FaultSweepOpts(context.Background(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Interrupted != 0 || len(full.Rows) == 0 {
		t.Fatalf("resumed sweep incomplete: %d rows, %d interrupted",
			len(full.Rows), full.Interrupted)
	}
	if len(full.ClassRows("nominal")) != 3 {
		t.Fatalf("nominal class rows = %d, want 3", len(full.ClassRows("nominal")))
	}
	base := errors.New("flaky")
	if !errors.Is(MarkRetryable(base), base) {
		t.Fatal("MarkRetryable must wrap its argument")
	}
}

func TestFacadeExtensions(t *testing.T) {
	sys := PaperSystem()
	dev := Camcorder()

	// Quantized policy + level helpers.
	levels := UniformLevels(sys, 5)
	if len(levels) != 5 || levels[0] != 0.1 || levels[4] != 1.2 {
		t.Fatalf("levels = %v", levels)
	}
	qset, err := OptimizeSlotQuantized(sys, 200, OptSlot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2}, levels)
	if err != nil {
		t.Fatal(err)
	}
	if qset.Fuel <= 0 {
		t.Fatal("quantized setting degenerate")
	}
	qp, err := NewFCDPMQuantized(sys, dev, levels)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Name() != "FC-DPM-q5" {
		t.Fatalf("quantized policy name = %q", qp.Name())
	}

	// Offline DP + schedule replay.
	sched, err := SolveOffline(OfflineProblem{
		Sys: sys, Cmax: 6,
		Slots: []OptSlot{{Ti: 14, IldI: 0.2, Ta: 5, IldA: 1.2}},
		Q0:    1, GridN: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Settings) != 1 {
		t.Fatalf("schedule = %+v", sched)
	}
	if p := NewSchedule(sys, sched.Settings); p.Name() == "" {
		t.Fatal("schedule policy nameless")
	}

	// Hydrogen.
	h := PaperHydrogen()
	if h.Grams(1000) <= 0 {
		t.Fatal("hydrogen conversion degenerate")
	}

	// Stochastic DPM.
	if tau := OptimalTimeout(dev, []float64{100, 200}); tau != 0 {
		t.Fatalf("long-idle optimal timeout = %v, want 0", tau)
	}
	adapter, err := NewAdaptiveTimeout(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	adapter.Observe(50)
	if adapter.NextTimeout() < 0 {
		t.Fatal("negative timeout")
	}

	// Heavy-tail workload.
	cfg := DefaultHeavyTailConfig()
	cfg.Duration = 120
	ht, err := HeavyTailTrace(cfg)
	if err != nil || ht.Len() == 0 {
		t.Fatalf("heavy-tail trace: %v", err)
	}

	// Aggregation.
	agg, err := AggregateTrace(PeriodicTrace(4, 10, 2, 1), 2)
	if err != nil || agg.Len() != 2 {
		t.Fatalf("aggregate: %v len=%d", err, agg.Len())
	}
	d, err := MaxDeferral(PeriodicTrace(4, 10, 2, 1), 2)
	if err != nil || d != 10 {
		t.Fatalf("deferral = %v, %v", d, err)
	}

	// Battery-aware contrast policy runs.
	res, err := Run(SimConfig{
		Sys: sys, Dev: dev,
		Store: MustSuperCap(6, 1), Trace: PeriodicTrace(5, 14, 3, 1.2),
		Policy: NewBatteryAware(sys),
	})
	if err != nil || res.Fuel <= 0 {
		t.Fatalf("battery-aware run: %v", err)
	}

	// DVS.
	proc := XScale600()
	task := DVSTask{Cycles: 3e8, Period: 4, Jobs: 5}
	if k := DVSEnergyOptimalLevel(proc, task, 0.2); k < 0 {
		t.Fatal("no energy-optimal level")
	}
	if k := DVSFuelOptimalLevel(sys, proc, task, 0.2); k < 0 {
		t.Fatal("no fuel-optimal level")
	}

	// Converters/controllers.
	if NewPWMConverter(12).Efficiency(1) >= NewPWMPFMConverter(12).Efficiency(1) {
		t.Fatal("PWM should lose at light load")
	}
	_ = ProportionalController()
	_ = OnOffController()
	if st, err := NewStack(BCS20W().Params()); err != nil || st.Voltage(0) != 18.2 {
		t.Fatalf("NewStack: %v", err)
	}
	if PaperSuperCap().Capacity() != 6 {
		t.Fatal("paper supercap")
	}
	tr, err := GenerateCamcorderTrace(DefaultCamcorderConfig())
	if err != nil || tr.Len() == 0 {
		t.Fatalf("camcorder trace: %v", err)
	}
	tr2, err := GenerateSyntheticTrace(DefaultSyntheticConfig())
	if err != nil || tr2.Len() == 0 {
		t.Fatalf("synthetic trace: %v", err)
	}
	if NewFlat(sys, 0.5).Name() == "" {
		t.Fatal("flat policy nameless")
	}

	// Sizing advisor.
	advTrace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(sys, dev, advTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.RangeOK || adv.RecommendedCmax <= 0 {
		t.Fatalf("advice = %+v", adv)
	}

	// Thermal analysis.
	th := PaperThermal()
	if th.SteadyTemp(sys, 1.2) <= th.Ambient {
		t.Fatal("full-load steady temp should exceed ambient")
	}
	if HDD().BreakEven() < 5 {
		t.Fatal("HDD break-even implausible")
	}

	// Bursty workload + event importer.
	bcfg := DefaultBurstyConfig()
	bcfg.Duration = 120
	if bt, err := BurstyTrace(bcfg); err != nil || bt.Len() == 0 {
		t.Fatalf("bursty trace: %v", err)
	}
	et, err := TraceFromEvents("log", []TraceEvent{
		{Arrival: 5, Service: 2, Current: 1},
		{Arrival: 20, Service: 2, Current: 1},
	}, 5)
	if err != nil || et.Len() != 2 {
		t.Fatalf("events trace: %v", err)
	}
}
