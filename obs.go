package fcdpm

import "fcdpm/internal/obs"

// Observability types: the dependency-free metrics registry shared by
// the simulator, the run-orchestration pool, and the serving tier.
// Register a SimMetrics / PoolMetrics bundle on one registry, hand the
// bundles to SimConfig.Metrics and FaultSweepOptions.Metrics, and render
// everything with MetricsRegistry.WritePrometheus — the same series the
// server's GET /metrics exposes.
type (
	// MetricsRegistry holds registered instruments and renders them in
	// the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// MetricsLabel is one constant key="value" pair on a series.
	MetricsLabel = obs.Label
	// SimMetrics is the simulator's instrument set (runs, slots, fuel,
	// memo hits/misses, wall-time histogram).
	SimMetrics = obs.SimMetrics
	// PoolMetrics is the orchestration pool's instrument set (queue
	// depth, resolutions, retries, breaker transitions).
	PoolMetrics = obs.PoolMetrics
	// BatchMetrics is the batched simulator's instrument set (batch
	// count, lane-width histogram, plan-group hits).
	BatchMetrics = obs.BatchMetrics
	// Tracer is the lightweight span facility: monotonic timestamps,
	// optional per-span hooks, slow-span threshold logging.
	Tracer = obs.Tracer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSimMetrics registers the simulator series on r and returns the
// bundle to assign to SimConfig.Metrics.
func NewSimMetrics(r *MetricsRegistry) *SimMetrics { return obs.NewSimMetrics(r) }

// NewPoolMetrics registers the pool series on r and returns the bundle
// to assign to RunnerOptions.Metrics.
func NewPoolMetrics(r *MetricsRegistry) *PoolMetrics { return obs.NewPoolMetrics(r) }

// NewBatchMetrics registers the batched-simulation series on r and
// returns the bundle to assign to BatchRunner.Metrics.
func NewBatchMetrics(r *MetricsRegistry) *BatchMetrics { return obs.NewBatchMetrics(r) }
