package fcdpm

import (
	"context"

	"fcdpm/internal/server"
	"fcdpm/internal/version"
)

// This file exposes the serving subsystem: the long-running simulation
// service behind `fcdpm serve` (see DESIGN.md §8).

// ServeOptions tunes the simulation service: listen address, pool
// sizing, per-run deadlines, the content-addressed result cache, and
// the graceful-drain budget. The zero value serves on 127.0.0.1:8080
// with a GOMAXPROCS-wide pool and a 64 MiB memory cache.
type ServeOptions = server.Options

// Serve runs the simulation service until ctx is canceled, then drains
// gracefully: in-flight runs finish, new admissions are shed, and the
// cache's disk tier (when configured) stays durable. A clean drain
// returns nil; a drain that exceeded its budget returns an error
// wrapping ErrSweepInterrupted, preserving the CLI exit-code contract.
func Serve(ctx context.Context, opts ServeOptions) error {
	return server.Serve(ctx, opts)
}

// BuildInfo identifies the running build: module version, VCS revision,
// dirty flag, and toolchain. The service reports it from /healthz and
// pins every cache key to it, so two builds never share addresses.
type BuildInfo = version.Info

// Build returns this binary's BuildInfo.
func Build() BuildInfo { return version.Get() }
